package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/hope-dist/hope/internal/aid"
	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/trace"
	"github.com/hope-dist/hope/internal/vpm"
)

// This file implements ownership-driven AID routing (DESIGN.md §13): the
// adjudicator for an assumption is the node the consistent-hash ring
// designates, not the node that minted the AID. Every AID-bound
// adjudication (Guess, Affirm, Deny, Retract, CutProbe, Probe) is
// rewritten to the ring owner's well-known router process and stamped
// with the sender's view epoch; a receiver that does not own the AID
// under its own ring NACKs the frame back, and the sender retries
// against a fresher ring. On a view change the old owner ships each
// moved AID's machine snapshot to the new owner (OwnershipChanged); on
// an owner's death the successor adopts the shard from the corpse's WAL
// (InstallExports). Both install paths merge rather than overwrite, so
// a transfer racing the receiver's lazy Cold-create converges.

// RoutingConfig parameterizes ownership routing. Nil (the default
// Config.Routing) disables it: AIDs are local processes adjudicated by
// the node that spawned them, exactly the pre-routing behavior.
type RoutingConfig struct {
	// Self is this node's cluster ID.
	Self int
	// NodeOf maps a PID to its owning node (wire.NodeOf in deployments).
	NodeOf func(ids.PID) int
	// RouterPID maps a node to its router process's well-known PID
	// (wire.RouterPID in deployments). The engine spawns its own router
	// at RouterPID(Self).
	RouterPID func(node int) ids.PID
	// Owner maps an assumption to its ring-designated owner under the
	// current membership view, with the view's epoch. ok is false while
	// no view is known (bootstrap); routed sends are then parked on the
	// retry queue until a view arrives.
	Owner func(ids.AID) (node int, epoch uint64, ok bool)
	// Ship transmits one encoded export batch to a node's routing layer
	// out of band (wire.Node.Transfer in deployments). It reports
	// whether the payload was accepted; a refused batch is re-exported
	// on the next view change. Nil disables live handoff (death
	// adoption through the WAL still works).
	Ship func(node int, payload []byte) bool
	// RetryEvery is the pacing of NACK/unknown-owner retries. Zero
	// defaults to 25ms.
	RetryEvery time.Duration
}

func (c *RoutingConfig) norm() *RoutingConfig {
	if c == nil {
		return nil
	}
	out := *c
	if out.RetryEvery <= 0 {
		out.RetryEvery = 25 * time.Millisecond
	}
	return &out
}

// AIDExporter is the optional durable hook for ownership routing: a
// Persister that also implements it receives each hosted AID's current
// machine snapshot after every applied adjudication (blob = one-element
// aid.EncodeBatch) and an empty blob as a tombstone when the AID is
// shipped away. A dead owner's successor replays these records to adopt
// the shard (durable.ReadAIDExports).
type AIDExporter interface {
	AIDExport(a ids.AID, blob []byte)
}

// RoutingStats counts the routing layer's work, for tests and the
// harness's exactly-once assertions.
type RoutingStats struct {
	Applied    uint64 // adjudications applied to hosted machines
	Nacked     uint64 // inbound adjudications rejected for wrong ownership
	Retries    uint64 // messages re-sent after a NACK or unknown owner
	Duplicates uint64 // exact duplicates dropped by the applied set
	Conflicts  uint64 // late conflicting messages dropped at a final state
	Moved      uint64 // hosted AIDs shipped to a new owner
	Adopted    uint64 // AIDs absorbed from a transfer or a WAL
	Batched    uint64 // retried adjudications that rode a coalesced Batch frame
}

// appliedKey identifies one adjudication for exactly-once application.
// idoHash folds the IDO set in (order-independently): a NACK retry of
// the same physical message collides, while a legitimate basis-refresh
// re-Affirm from the same interval (different IDO) does not.
type appliedKey struct {
	kind    msg.Kind
	from    ids.PID
	iid     ids.IntervalID
	idoHash uint64
}

func keyOf(m *msg.Message) appliedKey {
	var h uint64
	for _, a := range m.IDO {
		h ^= uint64(a) * 0x9e3779b97f4a7c15
	}
	return appliedKey{kind: m.Kind, from: m.From, iid: m.IID, idoHash: h}
}

// hostState is one assumption's machine as hosted by the router, plus
// the bookkeeping that makes application exactly-once.
type hostState struct {
	m       *aid.Machine
	applied map[appliedKey]bool
	moved   bool // shipped to a new owner; kept as a tombstone
}

// router is the per-engine ownership-routing state: a single vpm
// process (at the node's well-known RouterPID) that applies inbound
// adjudications to the hosted machine table, plus the retry queue for
// outbound messages whose owner was stale or unknown.
type router struct {
	eng *Engine
	cfg *RoutingConfig

	mu         sync.Mutex
	hosts      map[ids.AID]*hostState
	retry      []*msg.Message
	grantEpoch map[ids.AID]uint64 // view epoch at first routed Guess (lease grant)

	stats struct {
		applied, nacked, retries, duplicates, conflicts, moved, adopted, batched uint64
	}

	stop chan struct{}
	done chan struct{}
}

func newRouter(e *Engine, cfg *RoutingConfig) *router {
	return &router{
		eng:        e,
		cfg:        cfg,
		hosts:      make(map[ids.AID]*hostState),
		grantEpoch: make(map[ids.AID]uint64),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// start spawns the router process and the retry pacer. Called by
// NewEngine after the machine exists.
func (rt *router) start() error {
	_, err := rt.eng.machine.SpawnAt(rt.cfg.RouterPID(rt.cfg.Self), rt.run)
	if err != nil {
		return fmt.Errorf("core: spawn router: %w", err)
	}
	go rt.retryLoop()
	return nil
}

// run is the router's vpm body: every inbound frame is either a NACK of
// something we sent (requeue it) or an adjudication to adjudicate or
// reject under our own ring. Each handled remote frame is marked
// consumed in the WAL — the application's effect (the export record, or
// the NACK requeue) is appended first, so a crash between the two only
// costs an idempotent replay — which keeps the delivered-but-unconsumed
// fold (ReadOrphanFrames, Recovered.Redeliver) down to the frames a
// crash genuinely swallowed.
func (rt *router) run(p *vpm.Proc) {
	for {
		m, err := p.Recv()
		if err != nil {
			return // mailbox closed: engine shutdown
		}
		switch m.Kind {
		case msg.KindNack:
			orig, ok := m.Payload.(*msg.Message)
			if !ok || orig == nil {
				rt.consumed(m)
				continue
			}
			rt.mu.Lock()
			rt.stats.nacked++
			rt.retry = append(rt.retry, orig)
			rt.mu.Unlock()
		case msg.KindGuess, msg.KindAffirm, msg.KindDeny, msg.KindRetract,
			msg.KindCutProbe, msg.KindProbe:
			rt.handleRouted(p, m)
		case msg.KindBatch:
			// A peer's flushRetries coalesced several adjudications bound
			// for this owner into one frame. Unpack and adjudicate each:
			// an inner message we turn out not to own is NACKed
			// individually, so a batch straddling a view change costs only
			// the stale members a retry.
			inner, ok := m.Payload.([]*msg.Message)
			if !ok {
				rt.eng.tracer.Emit(trace.Event{
					Kind: trace.Violation, PID: p.PID(),
					Detail: fmt.Sprintf("router received Batch with %T payload", m.Payload),
				})
				rt.consumed(m)
				continue
			}
			for _, im := range inner {
				if im == nil {
					continue
				}
				switch im.Kind {
				case msg.KindGuess, msg.KindAffirm, msg.KindDeny, msg.KindRetract,
					msg.KindCutProbe, msg.KindProbe:
					rt.handleRouted(p, im)
				default:
					rt.eng.tracer.Emit(trace.Event{
						Kind: trace.Violation, PID: p.PID(),
						Detail: "router received batched " + im.Kind.String(),
					})
				}
			}
		default:
			rt.eng.tracer.Emit(trace.Event{
				Kind: trace.Violation, PID: p.PID(),
				Detail: "router received " + m.Kind.String(),
			})
		}
		rt.consumed(m)
	}
}

// consumed retires a remote-origin frame's WAL identity. Local frames
// (SrcSeq == 0) have none.
func (rt *router) consumed(m *msg.Message) {
	if per := rt.eng.persist; per != nil && m.SrcSeq != 0 {
		per.MessageConsumed(m)
	}
}

// handleRouted applies m if this node owns m.AID under its current
// ring, and NACKs it back to the sender's router otherwise.
func (rt *router) handleRouted(p *vpm.Proc, m *msg.Message) {
	owner, myEpoch, ok := rt.cfg.Owner(m.AID)
	if !ok || owner != rt.cfg.Self {
		p.Send(msg.Nack(p.PID(), rt.cfg.RouterPID(rt.cfg.NodeOf(m.From)), myEpoch, m))
		return
	}
	for _, out := range rt.apply(m) {
		p.Send(out)
	}
}

// apply steps the hosted machine for m.AID with m, creating it Cold on
// first contact, deduplicating retries, and dropping late conflicting
// messages at a final state. It returns the machine's outputs.
func (rt *router) apply(m *msg.Message) []*msg.Message {
	rt.mu.Lock()
	h := rt.hosts[m.AID]
	if h == nil {
		h = &hostState{
			m:       rt.newMachine(m.AID),
			applied: make(map[appliedKey]bool),
		}
		rt.hosts[m.AID] = h
	}
	// Ownership came back (a leave was undone, or a transfer bounced):
	// the tombstone is live state again.
	h.moved = false
	key := keyOf(m)
	if h.applied[key] {
		rt.stats.duplicates++
		rt.mu.Unlock()
		return nil
	}
	// A retried or migrated message can legitimately cross finality; a
	// conflicting one is dropped here rather than fed to the machine,
	// where it would trace as a protocol violation.
	st := h.m.State()
	if (m.Kind == msg.KindAffirm && st == aid.False) ||
		(m.Kind == msg.KindDeny && st == aid.True && rt.eng.stability == nil) {
		rt.stats.conflicts++
		rt.mu.Unlock()
		rt.eng.tracer.Emit(trace.Event{
			Kind: trace.Info, AID: m.AID,
			Detail: fmt.Sprintf("router dropped %s of %s AID", m.Kind, st),
		})
		return nil
	}
	h.applied[key] = true
	outs := h.m.Step(m)
	rt.stats.applied++
	blob := aid.EncodeBatch([]aid.Export{h.m.Export()})
	rt.mu.Unlock()
	if ex, ok := rt.eng.persist.(AIDExporter); ok {
		ex.AIDExport(m.AID, blob)
	}
	return outs
}

func (rt *router) newMachine(a ids.AID) *aid.Machine {
	m := aid.NewMachine(a, rt.eng.tracer)
	if rt.eng.stability != nil {
		m.EnableRevocable()
	}
	return m
}

// redirect intercepts an outbound message at the engine's send choke
// points. AID-bound adjudications addressed to the assumption itself
// are stamped with the current view epoch and re-addressed to the ring
// owner's router; everything else (Replace, Rollback, Revive, CutAck,
// Data — all targeting interval processes) passes through untouched.
// It reports whether the message was consumed (parked on the retry
// queue because no owner is known yet); false means send m, possibly
// rewritten, normally.
func (rt *router) redirect(m *msg.Message) bool {
	switch m.Kind {
	case msg.KindGuess, msg.KindAffirm, msg.KindDeny, msg.KindRetract,
		msg.KindCutProbe, msg.KindProbe:
	default:
		return false
	}
	if !m.AID.Valid() || m.To != m.AID.PID() {
		return false
	}
	owner, epoch, ok := rt.cfg.Owner(m.AID)
	if !ok {
		rt.mu.Lock()
		rt.retry = append(rt.retry, m)
		rt.mu.Unlock()
		return true
	}
	if m.Kind == msg.KindGuess {
		rt.mu.Lock()
		if _, seen := rt.grantEpoch[m.AID]; !seen {
			// The lease clock for this assumption starts under this view
			// epoch; orphan detection compares against it (DenyOwned).
			rt.grantEpoch[m.AID] = epoch
		}
		rt.mu.Unlock()
	}
	m.Epoch = epoch
	m.To = rt.cfg.RouterPID(owner)
	return false
}

// retryLoop re-sends parked messages (NACKed or owner-unknown) against
// the current ring, paced by RetryEvery.
func (rt *router) retryLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.RetryEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		rt.flushRetries()
	}
}

// flushRetries re-routes every parked message whose owner is now known.
// Messages sharing a destination owner are coalesced into one Batch
// frame per flush — a NACK storm after a view change then costs one
// frame per (owner, flush) instead of one per message — preserving
// per-destination order; a singleton goes out plain. Messages whose
// owner is still unknown are re-parked ahead of anything parked
// meanwhile, so repeated re-parks never reorder them.
func (rt *router) flushRetries() {
	rt.mu.Lock()
	pending := rt.retry
	rt.retry = nil
	rt.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	groups := make(map[int][]*msg.Message)
	var owners []int // insertion order: deterministic frame emission
	var unknown []*msg.Message
	for _, m := range pending {
		owner, epoch, ok := rt.cfg.Owner(m.AID)
		if !ok {
			unknown = append(unknown, m)
			continue
		}
		m.Epoch = epoch
		m.To = rt.cfg.RouterPID(owner)
		if len(groups[owner]) == 0 {
			owners = append(owners, owner)
		}
		groups[owner] = append(groups[owner], m)
	}
	if len(unknown) > 0 {
		rt.mu.Lock()
		rt.retry = append(unknown, rt.retry...)
		rt.mu.Unlock()
	}
	self := rt.cfg.RouterPID(rt.cfg.Self)
	for _, owner := range owners {
		grp := groups[owner]
		rt.mu.Lock()
		rt.stats.retries += uint64(len(grp))
		if len(grp) > 1 {
			rt.stats.batched += uint64(len(grp))
		}
		rt.mu.Unlock()
		if len(grp) == 1 {
			rt.eng.machine.Net().Send(grp[0])
			continue
		}
		rt.eng.machine.Net().Send(msg.Batch(self, grp[0].To, grp[0].Epoch, grp))
	}
}

// pendingRetries reports how many messages await a retry.
func (rt *router) pendingRetries() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.retry)
}

// migrationAdopted reports whether assumption a has been reassigned by
// the ring since its lease was granted: the current view epoch is past
// the grant epoch and a live owner exists. Orphan detection (DenyOwned)
// must then leave a alone — the successor adjudicates it now, and
// denying it here would kill a migration in progress.
func (rt *router) migrationAdopted(a ids.AID) bool {
	_, epoch, ok := rt.cfg.Owner(a)
	if !ok {
		return false
	}
	rt.mu.Lock()
	grant, seen := rt.grantEpoch[a]
	rt.mu.Unlock()
	return seen && epoch > grant
}

// shipBatches encodes and ships per-owner export batches; it returns
// the AIDs in batches that were refused so the caller can unmark them.
func (rt *router) shipBatches(batches map[int][]aid.Export) (tombstones, failed []ids.AID) {
	for owner, exports := range batches {
		payload := aid.EncodeBatch(exports)
		shipped := rt.cfg.Ship != nil && rt.cfg.Ship(owner, payload)
		for _, e := range exports {
			if shipped {
				tombstones = append(tombstones, e.AID)
			} else {
				failed = append(failed, e.AID)
			}
		}
	}
	return tombstones, failed
}

// OwnershipChanged re-evaluates every hosted assumption against the
// current ring and ships the machines this node no longer owns to their
// new owners over the transfer frame. Call it after each membership
// view change. A batch the transport refuses stays hosted and is
// re-offered on the next call; inbound adjudications for a moved AID
// are NACKed by the ownership check regardless, so the flag only
// prevents duplicate exports. No-op when routing is off.
func (e *Engine) OwnershipChanged() {
	rt := e.router
	if rt == nil {
		return
	}
	rt.mu.Lock()
	batches := make(map[int][]aid.Export)
	for a, h := range rt.hosts {
		if h.moved {
			continue
		}
		owner, _, ok := rt.cfg.Owner(a)
		if !ok || owner == rt.cfg.Self {
			continue
		}
		batches[owner] = append(batches[owner], h.m.Export())
		h.moved = true
	}
	rt.mu.Unlock()
	tombstones, failed := rt.shipBatches(batches)
	rt.mu.Lock()
	rt.stats.moved += uint64(len(tombstones))
	for _, a := range failed {
		if h := rt.hosts[a]; h != nil {
			h.moved = false
		}
	}
	rt.mu.Unlock()
	ex, durable := e.persist.(AIDExporter)
	for _, a := range tombstones {
		if durable {
			// The shipped machine is no longer ours: tombstone its WAL
			// export so a successor adopting our corpse skips it.
			ex.AIDExport(a, nil)
		}
		e.tracer.Emit(trace.Event{
			Kind: trace.Info, AID: a, Detail: "shipped to new ring owner",
		})
	}
	// A view change is also the retry queue's wake-up call: messages
	// parked on a stale owner may route cleanly now.
	rt.flushRetries()
}

// InstallTransfer absorbs an inbound export batch (the transfer-frame
// payload). Every export is merged unconditionally: a transfer is an
// explicit push from the previous owner, who tombstoned its copy the
// moment the ship was accepted — filtering by our own (possibly lagging)
// view here would drop the only live copy. If the ring still disagrees
// once our view catches up, the next OwnershipChanged ships the machine
// onward. Returns how many AIDs were absorbed. No-op when routing is
// off.
func (e *Engine) InstallTransfer(payload []byte) (int, error) {
	rt := e.router
	if rt == nil {
		return 0, nil
	}
	exports, err := aid.DecodeBatch(payload)
	if err != nil {
		return 0, fmt.Errorf("core: install transfer: %w", err)
	}
	return rt.install(exports, false), nil
}

// InstallExports absorbs WAL-recovered export blobs (one per AID, each
// a one-element batch): the restart path passes onlyOwned=false to
// reclaim its own shard wholesale (a later OwnershipChanged ships away
// what the ring moved meanwhile); the death-adoption path passes
// onlyOwned=true so concurrent survivors reading one corpse's WAL
// partition the shard without overlap. It returns how many AIDs were
// absorbed. No-op when routing is off.
func (e *Engine) InstallExports(blobs map[ids.AID][]byte, onlyOwned bool) (int, error) {
	rt := e.router
	if rt == nil {
		return 0, nil
	}
	var exports []aid.Export
	for a, blob := range blobs {
		if len(blob) == 0 {
			continue // tombstone: shipped away before the crash
		}
		decoded, err := aid.DecodeBatch(blob)
		if err != nil {
			return 0, fmt.Errorf("core: install exports for %v: %w", a, err)
		}
		exports = append(exports, decoded...)
	}
	return rt.install(exports, onlyOwned), nil
}

// install merges exports into the hosted table, optionally filtered to
// ring-owned AIDs, and persists each absorbed machine. A machine
// adopted in a final state re-announces its outcome to its DOM: the
// previous owner may have died with the fan-out still in its outbound
// queue, and no later Step repeats it (stepAffirm on True is a no-op).
// Replace and Rollback carry the stale-target guard at intervals, so a
// fan-out that did survive makes these duplicates, not conflicts.
func (rt *router) install(exports []aid.Export, onlyOwned bool) int {
	installed := 0
	var persistAIDs []ids.AID
	var persistBlobs [][]byte
	var announce []*msg.Message
	rt.mu.Lock()
	for _, exp := range exports {
		if onlyOwned {
			owner, _, ok := rt.cfg.Owner(exp.AID)
			if !ok || owner != rt.cfg.Self {
				continue
			}
		}
		h := rt.hosts[exp.AID]
		if h == nil {
			h = &hostState{
				m:       rt.newMachine(exp.AID),
				applied: make(map[appliedKey]bool),
			}
			rt.hosts[exp.AID] = h
		}
		h.moved = false
		h.m.Merge(exp)
		rt.stats.adopted++
		installed++
		persistAIDs = append(persistAIDs, exp.AID)
		persistBlobs = append(persistBlobs, aid.EncodeBatch([]aid.Export{h.m.Export()}))
		switch h.m.State() {
		case aid.True:
			for _, b := range h.m.DOM() {
				announce = append(announce, msg.Replace(exp.AID, b, nil))
			}
		case aid.False:
			for _, b := range h.m.DOM() {
				announce = append(announce, msg.Rollback(exp.AID, b))
			}
		}
	}
	rt.mu.Unlock()
	if ex, ok := rt.eng.persist.(AIDExporter); ok {
		for i, a := range persistAIDs {
			ex.AIDExport(a, persistBlobs[i])
		}
	}
	for _, m := range announce {
		rt.eng.machine.Net().Send(m)
	}
	return installed
}

// RequeueRouted re-parks an adjudication on the routing retry queue —
// the wire layer's hand-back (wire.HealthConfig.OnDeadFrame) for
// frames abandoned toward a dead owner. The retry pacer re-resolves
// the ring on each flush, so once the view reassigns the shard the
// message reaches the successor; if the corpse had in fact applied it
// before dying, the adopted machine absorbs the replay idempotently.
// It reports whether the message was queued: false when routing is off
// or m is not a routed adjudication (NACKs and interval-directed
// traffic die with the peer, by design).
func (e *Engine) RequeueRouted(m *msg.Message) bool {
	rt := e.router
	if rt == nil || m == nil || !m.AID.Valid() {
		return false
	}
	switch m.Kind {
	case msg.KindGuess, msg.KindAffirm, msg.KindDeny, msg.KindRetract,
		msg.KindCutProbe, msg.KindProbe:
	default:
		return false
	}
	rt.mu.Lock()
	rt.retry = append(rt.retry, m)
	rt.mu.Unlock()
	return true
}

// RoutingStats snapshots the routing counters (zero value when routing
// is off).
func (e *Engine) RoutingStats() RoutingStats {
	rt := e.router
	if rt == nil {
		return RoutingStats{}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return RoutingStats{
		Applied:    rt.stats.applied,
		Nacked:     rt.stats.nacked,
		Retries:    rt.stats.retries,
		Duplicates: rt.stats.duplicates,
		Conflicts:  rt.stats.conflicts,
		Moved:      rt.stats.moved,
		Adopted:    rt.stats.adopted,
		Batched:    rt.stats.batched,
	}
}

// HostedExports snapshots every live (non-moved) hosted machine, for
// the migration oracle and tests. Nil when routing is off.
func (e *Engine) HostedExports() []aid.Export {
	rt := e.router
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]aid.Export, 0, len(rt.hosts))
	for _, h := range rt.hosts {
		if h.moved {
			continue
		}
		out = append(out, h.m.Export())
	}
	return out
}

// HostedState returns the hosted machine state for a, and whether this
// node currently hosts it live. Tests use it to assert exactly-one-host.
func (e *Engine) HostedState(a ids.AID) (aid.State, bool) {
	rt := e.router
	if rt == nil {
		return 0, false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h := rt.hosts[a]
	if h == nil || h.moved {
		return 0, false
	}
	return h.m.State(), true
}

// collectHosted archives and reclaims final hosted machines — the
// routed analogue of Collect's probe-and-kill sweep.
func (rt *router) collectHosted() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	collected := 0
	for a, h := range rt.hosts {
		st := h.m.State()
		if h.moved {
			delete(rt.hosts, a)
			continue
		}
		if !st.Final() {
			continue
		}
		rt.eng.mu.Lock()
		rt.eng.archive[a] = st == aid.True
		rt.eng.mu.Unlock()
		delete(rt.hosts, a)
		collected++
	}
	return collected
}

// shutdown stops the retry pacer. The router process itself dies with
// the machine.
func (rt *router) shutdown() {
	close(rt.stop)
	<-rt.done
}
