package core

// Micro-benchmarks for the primitive hot paths, complementing the
// experiment macro-benchmarks at the repository root.

import (
	"sync"
	"testing"

	"github.com/hope-dist/hope/internal/ids"
)

// benchEngine builds an engine torn down with the benchmark.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	eng := NewEngine(Config{})
	b.Cleanup(eng.Shutdown)
	return eng
}

// BenchmarkGuessAffirmed measures a full guess lifecycle: one guess plus
// its eventual resolution, amortized over a batch per process.
func BenchmarkGuessAffirmed(b *testing.B) {
	eng := benchEngine(b)
	const batch = 64

	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		aids := make([]ids.AID, batch)
		for i := range aids {
			x, err := eng.NewAID()
			if err != nil {
				b.Fatal(err)
			}
			aids[i] = x
		}
		var wg sync.WaitGroup
		wg.Add(1)
		if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
			defer wg.Done()
			for _, x := range aids {
				ctx.Guess(x)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
			for _, x := range aids {
				ctx.Affirm(x)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
}

// BenchmarkSendRecv measures tagged message round trips between two
// definite processes.
func BenchmarkSendRecv(b *testing.B) {
	eng := benchEngine(b)

	echo, err := eng.SpawnRoot(func(ctx *Ctx) error {
		for {
			v, from, err := ctx.Recv()
			if err != nil {
				return err
			}
			ctx.Send(from, v)
		}
	})
	if err != nil {
		b.Fatal(err)
	}

	done := make(chan struct{})
	b.ResetTimer()
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		defer close(done)
		for i := 0; i < b.N; i++ {
			ctx.Send(echo.PID(), i)
			if _, _, err := ctx.Recv(); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	<-done
}

// BenchmarkRollbackReplay measures one deny-rollback-replay cycle over a
// journal of the given depth.
func BenchmarkRollbackReplay(b *testing.B) {
	for _, depth := range []int{8, 64} {
		b.Run(byDepth(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := NewEngine(Config{})
				x, _ := eng.NewAID()
				done := make(chan struct{}, 2)
				if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
					// Build a journal prefix of Record entries, then
					// speculate and park.
					for j := 0; j < depth; j++ {
						ctx.Record(func() any { return j })
					}
					ctx.Guess(x)
					done <- struct{}{}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				<-done
				if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
					ctx.Deny(x)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				if !eng.Settle(settleTimeout) {
					b.Fatal("no settle")
				}
				eng.Shutdown()
			}
		})
	}
}

func byDepth(d int) string {
	if d < 10 {
		return "depth=small"
	}
	return "depth=large"
}
