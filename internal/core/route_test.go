package core_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/aid"
	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/netsim"
	"github.com/hope-dist/hope/internal/transport"
)

// The migration battery: fixed-seed gated-transport tests (in the style
// of TestPrematureCommitWindow) that land a view change in the middle of
// an adjudication and pin the repair path — stale-epoch NACK, retry
// against the fresh ring, exactly-once application — plus the DenyOwned
// grant-epoch regression.

const routePIDBits = 20 // PID space per simulated node

func routeNode(pid ids.PID) int { return int(pid >> routePIDBits) }

func routeRouterPID(node int) ids.PID {
	return ids.PID(node)<<routePIDBits | 1<<(routePIDBits-1)
}

// routeView is one node's membership view: a single owner for every key
// at some epoch — the unit-test stand-in for a consistent-hash ring,
// flipped by hand exactly where the schedule needs the view change.
type routeView struct {
	mu    sync.Mutex
	epoch uint64
	owner int
	known bool
}

func (v *routeView) get() (int, uint64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.owner, v.epoch, v.known
}

func (v *routeView) set(owner int, epoch uint64) {
	v.mu.Lock()
	v.owner = owner
	v.epoch = epoch
	v.known = true
	v.mu.Unlock()
}

// holdGate captures frames matching installed rules — in-flight messages
// the schedule has not delivered yet — and can release them later, unlike
// the drop-only gate in the stability window test.
type holdGate struct {
	mu    sync.Mutex
	rules []func(*msg.Message) bool
	held  []*msg.Message
}

func (g *holdGate) hold(rule func(*msg.Message) bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rules = append(g.rules, rule)
}

func (g *holdGate) intercept(m *msg.Message) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.rules {
		if r(m) {
			g.held = append(g.held, m)
			return true
		}
	}
	return false
}

func (g *holdGate) heldCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.held)
}

// release drops the rules and re-injects every held frame into net.
func (g *holdGate) release(net transport.Transport) []*msg.Message {
	g.mu.Lock()
	g.rules = nil
	held := g.held
	g.held = nil
	g.mu.Unlock()
	for _, m := range held {
		net.Send(m)
	}
	return held
}

type routeGatedNet struct {
	transport.Transport
	g *holdGate
}

func (t *routeGatedNet) Send(m *msg.Message) {
	if t.g.intercept(m) {
		return
	}
	t.Transport.Send(m)
}

func (t *routeGatedNet) Close() {}

// routeCluster is a simulated routed cluster: engines sharing one netsim
// net, each with its own flippable view.
type routeCluster struct {
	engines map[int]*core.Engine
	views   map[int]*routeView
}

func newRouteCluster(net transport.Transport, g *holdGate, nodes []int) *routeCluster {
	c := &routeCluster{
		engines: make(map[int]*core.Engine),
		views:   make(map[int]*routeView),
	}
	for _, node := range nodes {
		view := &routeView{}
		c.views[node] = view
		self := node
		cfg := core.Config{
			PIDBase:   ids.PID(node) << routePIDBits,
			Transport: net,
			Routing: &core.RoutingConfig{
				Self:      self,
				NodeOf:    routeNode,
				RouterPID: routeRouterPID,
				Owner: func(ids.AID) (int, uint64, bool) {
					return view.get()
				},
				Ship: func(to int, payload []byte) bool {
					target := c.engines[to]
					if target == nil {
						return false
					}
					_, err := target.InstallTransfer(payload)
					return err == nil
				},
				RetryEvery: 2 * time.Millisecond,
			},
		}
		if g != nil {
			cfg.Transport = &routeGatedNet{Transport: net, g: g}
		}
		c.engines[node] = core.NewEngine(cfg)
	}
	return c
}

func (c *routeCluster) shutdown() {
	for _, e := range c.engines {
		e.Shutdown()
	}
}

func routeWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMigrationRaceStaleEpochNack lands a view change mid-adjudication:
// a definite Affirm is in flight toward the epoch-1 owner when the ring
// moves the assumption (and its machine, over the transfer path) to a
// successor. The stale frame must be NACKed by the old owner, retried by
// the sender against the fresh ring, and applied exactly once at the new
// owner — and a deliberately replayed duplicate of the same frame must
// be dropped by the applied set, not double-applied. The outcome must
// match a no-churn control run of the same workload.
func TestMigrationRaceStaleEpochNack(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMigrationRace(t, seed)
		})
	}
}

// migrationWorkload guesses a on node 1 and then issues a definite
// Affirm of a from a second root; it returns the guess outcome.
func migrationWorkload(t *testing.T, c *routeCluster, a ids.AID) func() bool {
	t.Helper()
	var mu sync.Mutex
	outcome := false
	if _, err := c.engines[1].SpawnRoot(func(ctx *core.Ctx) error {
		ok := ctx.Guess(a)
		mu.Lock()
		outcome = ok
		mu.Unlock()
		_, _, err := ctx.Recv()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return func() bool {
		mu.Lock()
		defer mu.Unlock()
		return outcome
	}
}

func affirmFrom(t *testing.T, e *core.Engine, a ids.AID) {
	t.Helper()
	if _, err := e.SpawnRoot(func(ctx *core.Ctx) error {
		ctx.Affirm(a)
		_, _, err := ctx.Recv()
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func runMigrationRace(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	jitter := func() { time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond) }

	// Control run: same workload, no view change. Its verdict is the
	// yardstick the churned run must match.
	ctrlNet := netsim.New(netsim.Constant(100 * time.Microsecond))
	defer ctrlNet.Close()
	ctrl := newRouteCluster(ctrlNet, nil, []int{1, 2, 3})
	defer ctrl.shutdown()
	for _, v := range ctrl.views {
		v.set(2, 1)
	}
	ctrlAID, err := ctrl.engines[1].NewAID()
	if err != nil {
		t.Fatal(err)
	}
	ctrlOutcome := migrationWorkload(t, ctrl, ctrlAID)
	routeWaitFor(t, "control machine Hot at owner", func() bool {
		st, ok := ctrl.engines[2].HostedState(ctrlAID)
		return ok && st == aid.Hot
	})
	affirmFrom(t, ctrl.engines[1], ctrlAID)
	routeWaitFor(t, "control machine True", func() bool {
		st, ok := ctrl.engines[2].HostedState(ctrlAID)
		return ok && st == aid.True
	})

	// Churned run: the same schedule, with the Affirm gated in flight
	// across the view change.
	net := netsim.New(netsim.Constant(100 * time.Microsecond))
	defer net.Close()
	g := &holdGate{}
	c := newRouteCluster(net, g, []int{1, 2, 3})
	defer c.shutdown()
	for _, v := range c.views {
		v.set(2, 1) // epoch 1: node 2 owns everything
	}

	a, err := c.engines[1].NewAID()
	if err != nil {
		t.Fatal(err)
	}
	outcome := migrationWorkload(t, c, a)
	routeWaitFor(t, "machine Hot at epoch-1 owner", func() bool {
		st, ok := c.engines[2].HostedState(a)
		return ok && st == aid.Hot
	})
	jitter()

	// Gate the Affirm so it hangs in flight toward the epoch-1 owner.
	g.hold(func(m *msg.Message) bool {
		return m.Kind == msg.KindAffirm && m.AID == a && m.To == routeRouterPID(2)
	})
	affirmFrom(t, c.engines[1], a)
	routeWaitFor(t, "the Affirm to be caught in flight", func() bool {
		return g.heldCount() == 1
	})
	jitter()

	// The view change lands while the Affirm is in flight: node 2 learns
	// first and ships the machine to the successor; then the others learn.
	c.views[2].set(3, 2)
	c.engines[2].OwnershipChanged()
	if _, ok := c.engines[2].HostedState(a); ok {
		t.Fatal("old owner still hosts the machine after shipping it")
	}
	routeWaitFor(t, "successor to absorb the transferred machine", func() bool {
		c.views[3].set(3, 2)
		st, ok := c.engines[3].HostedState(a)
		return ok && st == aid.Hot
	})
	c.views[1].set(3, 2)
	jitter()

	// Deliver the stale frame. Node 2 no longer owns a: it must NACK, and
	// node 1's router must retry against the fresh ring.
	held := g.release(net)
	routeWaitFor(t, "stale Affirm to be NACKed, retried, and applied", func() bool {
		st, ok := c.engines[3].HostedState(a)
		return ok && st == aid.True
	})
	s1 := c.engines[1].RoutingStats()
	if s1.Nacked == 0 {
		t.Errorf("sender never saw the stale-epoch NACK: %+v", s1)
	}
	if s1.Retries == 0 {
		t.Errorf("sender never retried the NACKed frame: %+v", s1)
	}

	// Replay the identical stale frame (a retransmission crossing the
	// migration): it must bounce through the same NACK path and then be
	// dropped by the applied set — applied exactly once, not twice.
	dup := *held[0]
	net.Send(&dup)
	routeWaitFor(t, "the duplicate to be dropped by the applied set", func() bool {
		return c.engines[3].RoutingStats().Duplicates >= 1
	})
	if st, ok := c.engines[3].HostedState(a); !ok || st != aid.True {
		t.Fatalf("machine left True after the duplicate: state=%v hosted=%v", st, ok)
	}

	// The guesser's interval must finalize on the affirmed verdict.
	routeWaitFor(t, "the guessing interval to finalize", func() bool {
		for _, p := range c.engines[1].Processes() {
			for _, ii := range p.HistorySnapshot() {
				if ii.GuessAID == a && ii.Definite {
					return true
				}
			}
		}
		return false
	})

	for node, e := range c.engines {
		if !e.Settle(30 * time.Second) {
			t.Fatalf("engine %d did not settle", node)
		}
	}

	// Exactly one applied outcome, matching the no-churn control.
	if got, want := outcome(), ctrlOutcome(); got != want {
		t.Errorf("churned outcome %v diverges from control %v", got, want)
	}
	stSucc, ok := c.engines[3].HostedState(a)
	if !ok || stSucc != aid.True {
		t.Errorf("successor verdict = (%v, %v), want True", stSucc, ok)
	}
	stCtrl, _ := ctrl.engines[2].HostedState(ctrlAID)
	if stSucc != stCtrl {
		t.Errorf("churned verdict %v diverges from control %v", stSucc, stCtrl)
	}
	if s2 := c.engines[2].RoutingStats(); s2.Moved != 1 {
		t.Errorf("old owner Moved = %d, want 1", s2.Moved)
	}
	s3 := c.engines[3].RoutingStats()
	if s3.Adopted == 0 {
		t.Errorf("successor adopted nothing: %+v", s3)
	}
	var violations int64
	for _, e := range c.engines {
		violations += e.Violations()
	}
	if violations != 0 {
		t.Errorf("%d protocol violations during migration", violations)
	}
}

// TestMigrationDenyOwnedGrantEpoch is the DenyOwned regression for
// ownership routing: orphanhood is decided against the view epoch at
// lease grant, not the current ring. An assumption created by a node
// that later dies is NOT an orphan if the ring has since reassigned it
// to a live successor that adopted the machine — denying it would kill
// the very speculation the migration saved. The control arm checks the
// inverse: with no reassignment (the view never moved), the dead
// creator's assumption is still denied.
func TestMigrationDenyOwnedGrantEpoch(t *testing.T) {
	for _, reassigned := range []bool{true, false} {
		t.Run(fmt.Sprintf("reassigned=%v", reassigned), func(t *testing.T) {
			runDenyOwnedGrantEpoch(t, reassigned)
		})
	}
}

func runDenyOwnedGrantEpoch(t *testing.T, reassigned bool) {
	net := netsim.New(netsim.Constant(100 * time.Microsecond))
	defer net.Close()
	c := newRouteCluster(net, nil, []int{1, 2, 3})
	defer c.shutdown()
	for _, v := range c.views {
		v.set(2, 1) // epoch 1: node 2 owns everything (including itself)
	}

	// The assumption is minted by node 2 — the node that will die — so
	// its PID namespace satisfies the death predicate below. grantEpoch
	// is recorded when node 1 routes its Guess under epoch 1.
	a, err := c.engines[2].NewAID()
	if err != nil {
		t.Fatal(err)
	}
	outcome := migrationWorkload(t, c, a)
	routeWaitFor(t, "machine Hot at epoch-1 owner", func() bool {
		st, ok := c.engines[2].HostedState(a)
		return ok && st == aid.Hot
	})

	if reassigned {
		// Node 2 dies; the ring reassigns to node 3, which adopts the
		// shard from the corpse's exports (the WAL path, simulated here
		// by reading the dead engine's hosted table directly).
		exports := c.engines[2].HostedExports()
		blobs := make(map[ids.AID][]byte, len(exports))
		for _, e := range exports {
			blobs[e.AID] = aid.EncodeBatch([]aid.Export{e})
		}
		c.views[1].set(3, 2)
		c.views[3].set(3, 2)
		if n, err := c.engines[3].InstallExports(blobs, true); err != nil || n != 1 {
			t.Fatalf("InstallExports = (%d, %v), want (1, nil)", n, err)
		}
	}

	deadNode2 := func(pid ids.PID) bool { return routeNode(pid) == 2 }
	denied := c.engines[1].DenyOwned(deadNode2, "node 2 presumed dead")

	if reassigned {
		if denied != 0 {
			t.Fatalf("DenyOwned denied %d reassigned assumptions; the successor owns them now", denied)
		}
		if n := c.engines[1].AutoDenied(); n != 0 {
			t.Fatalf("AutoDenied = %d after a clean migration", n)
		}
		// The adopted machine is live at the successor: an Affirm routed
		// there must still resolve the guess true.
		affirmFrom(t, c.engines[1], a)
		routeWaitFor(t, "adopted machine to be affirmed at the successor", func() bool {
			st, ok := c.engines[3].HostedState(a)
			return ok && st == aid.True
		})
		routeWaitFor(t, "the guessing interval to finalize", func() bool {
			for _, p := range c.engines[1].Processes() {
				for _, ii := range p.HistorySnapshot() {
					if ii.GuessAID == a && ii.Definite {
						return true
					}
				}
			}
			return false
		})
		if !outcome() {
			t.Error("guess outcome flipped to false despite the adoption")
		}
	} else {
		// No view change reached anyone: the assumption really is
		// orphaned and the grant-epoch check must not suppress the deny.
		if denied != 1 {
			t.Fatalf("DenyOwned denied %d, want 1 (no reassignment happened)", denied)
		}
		routeWaitFor(t, "the denial to roll the guesser back", func() bool {
			return !outcome() || c.engines[1].AutoDenied() == 1
		})
	}

	for node, e := range c.engines {
		if node == 2 && !reassigned {
			continue // the "dead" node still hosts the denied machine's traffic
		}
		if !e.Settle(30 * time.Second) {
			t.Fatalf("engine %d did not settle", node)
		}
	}
}
