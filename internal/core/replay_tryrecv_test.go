package core

import (
	"sync"
	"testing"
)

// TestReplayTryRecvMiss: a journalled TryRecv miss (KindTryRecv with
// Result=false, no message) must replay as a miss after rollback, even
// though the replay path has no message to return — regression coverage
// for the empty-mailbox replay branch.
func TestReplayTryRecvMiss(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, err := eng.NewAID()
	if err != nil {
		t.Fatalf("NewAID: %v", err)
	}

	var mu sync.Mutex
	var outcomes []bool

	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		_, _, ok := ctx.TryRecv() // nothing was ever sent here: always a miss
		mu.Lock()
		outcomes = append(outcomes, ok)
		mu.Unlock()
		ctx.Guess(x) // denied below → rollback → the miss replays
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	if st := p.Snapshot(); st.Restarts == 0 {
		t.Fatal("process never rolled back")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(outcomes) < 2 {
		t.Fatalf("body ran %d times, want at least 2", len(outcomes))
	}
	for i, ok := range outcomes {
		if ok {
			t.Fatalf("run %d: TryRecv returned ok=true, want replayed miss", i)
		}
	}
}
