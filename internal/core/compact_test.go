package core

import (
	"sync"
	"testing"

	"github.com/hope-dist/hope/internal/ids"
)

// counterLoop builds a Loop body that sums integer payloads and reports
// each new total to sink.
func counterLoop(compactEvery int, sink func(total int)) Body {
	return Loop(LoopConfig[int]{
		Init:  func() int { return 0 },
		Clone: func(s int) int { return s },
		Handle: func(ctx *Ctx, state int, payload any, from ids.PID) (int, error) {
			if v, ok := payload.(int); ok {
				state += v
				sink(state)
			}
			return state, nil
		},
		CompactEvery: compactEvery,
	})
}

// TestLoopCompactsJournal: a definite server's journal stays bounded.
func TestLoopCompactsJournal(t *testing.T) {
	eng := newTestEngine(t, Config{})

	var mu sync.Mutex
	var last int
	server, err := eng.SpawnRoot(counterLoop(4, func(total int) {
		mu.Lock()
		last = total
		mu.Unlock()
	}))
	if err != nil {
		t.Fatalf("spawn server: %v", err)
	}

	const sends = 40
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		for i := 1; i <= sends; i++ {
			ctx.Send(server.PID(), i)
		}
		return nil
	}); err != nil {
		t.Fatalf("spawn sender: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}

	mu.Lock()
	got := last
	mu.Unlock()
	if want := sends * (sends + 1) / 2; got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
	// Without compaction the journal would hold ~40 receive entries;
	// with CompactEvery=4 it must stay below one compaction window.
	if n := server.JournalLen(); n > 8 {
		t.Fatalf("journal length = %d after compaction, want bounded", n)
	}
}

// TestLoopStateSurvivesCompactionAndRollback: a server compacted away
// its early journal, then a speculative client makes it roll back; the
// restored state must include everything before the compaction.
func TestLoopStateSurvivesCompactionAndRollback(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()

	var mu sync.Mutex
	var totals []int
	server, err := eng.SpawnRoot(counterLoop(2, func(total int) {
		mu.Lock()
		totals = append(totals, total)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatalf("spawn server: %v", err)
	}

	// Definite prefix: establish state and trigger compaction.
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		for i := 0; i < 6; i++ {
			ctx.Send(server.PID(), 10)
		}
		return nil
	}); err != nil {
		t.Fatalf("spawn prefix sender: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle after prefix")
	}
	if n := server.JournalLen(); n > 4 {
		t.Fatalf("journal not compacted: %d entries", n)
	}

	// Speculative suffix: a guessing client taints the server, then the
	// assumption is denied — the server replays from its snapshot.
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		if ctx.Guess(x) {
			ctx.Send(server.PID(), 1000)
		} else {
			ctx.Send(server.PID(), 7)
		}
		return nil
	}); err != nil {
		t.Fatalf("spawn speculator: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle after speculation")
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle after deny")
	}

	st := server.Snapshot()
	if st.Restarts == 0 {
		t.Fatal("server never rolled back")
	}
	if !st.AllDefinite {
		t.Fatalf("server not definite: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(totals) == 0 {
		t.Fatal("no totals recorded")
	}
	// Final committed total: 6×10 from before compaction + the corrected
	// 7 — state from before the compaction must have survived the
	// rollback/replay cycle.
	if last := totals[len(totals)-1]; last != 67 {
		t.Fatalf("final total = %d, want 67 (totals: %v)", last, totals)
	}
}

// TestCompactRefusedWhileSpeculative: Compact is a no-op when any
// interval is still speculative.
func TestCompactRefusedWhileSpeculative(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()

	var mu sync.Mutex
	var compacted bool
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Guess(x) // now speculative
		ok := ctx.Compact(func() any { return "snapshot" })
		mu.Lock()
		compacted = ok
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	defer mu.Unlock()
	if compacted {
		t.Fatal("compaction succeeded inside speculation")
	}
}

// TestCompactBaseRoundTrip: direct Compact/Base use in a hand-rolled
// loop-structured body.
func TestCompactBaseRoundTrip(t *testing.T) {
	eng := newTestEngine(t, Config{})

	type snap struct{ Seen int }
	var mu sync.Mutex
	var lastSeen int
	server, err := eng.SpawnRoot(func(ctx *Ctx) error {
		seen := 0
		if base, ok := ctx.Base(); ok {
			seen = base.(snap).Seen
		}
		for {
			if _, _, err := ctx.Recv(); err != nil {
				return err
			}
			seen++
			mu.Lock()
			lastSeen = seen
			mu.Unlock()
			s := snap{Seen: seen}
			ctx.Compact(func() any { return s })
		}
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		for i := 0; i < 5; i++ {
			ctx.Send(server.PID(), "ping")
		}
		return nil
	}); err != nil {
		t.Fatalf("spawn pinger: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	defer mu.Unlock()
	if lastSeen != 5 {
		t.Fatalf("seen = %d, want 5", lastSeen)
	}
	if n := server.JournalLen(); n > 1 {
		t.Fatalf("journal length = %d, want ≤1 after per-message compaction", n)
	}
}
