package core

import (
	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/interval"
	"github.com/hope-dist/hope/internal/journal"
	"github.com/hope-dist/hope/internal/msg"
)

// Persister is the write-ahead-log surface the engine calls so user
// processes can be rebuilt after a crash. It is implemented by
// internal/durable; core itself never touches disk. A nil Persister (the
// default) disables persistence.
//
// Every method except Consumed is invoked with the owning process's lock
// held, so implementations see mutations in program order and must treat
// their own locking as a leaf (never call back into the engine).
// Arguments that alias live state (journal entries, interval records) are
// only safe to read during the call — encode, don't retain.
type Persister interface {
	// JournalAppend records one appended journal entry. Entries are
	// recorded in order; a Rollback implies truncation of every entry at
	// or beyond the rolled-back interval's JournalIndex.
	JournalAppend(pid ids.PID, e *journal.Entry)
	// IntervalOpen records a freshly opened interval (before its Guess
	// registrations are sent).
	IntervalOpen(pid ids.PID, rec *interval.Record)
	// IntervalState re-records an interval's dependency sets after a
	// mutation (Replace application, cut retirement, revive, or a
	// speculative affirm/deny buffering into IHA/IHD).
	IntervalState(pid ids.PID, rec *interval.Record)
	// IntervalFinalize records that the interval became definite.
	IntervalFinalize(pid ids.PID, iid ids.IntervalID)
	// Rollback records that iid and everything after it was discarded
	// (history truncated from iid, journal truncated to iid's
	// JournalIndex). Rolling back the root terminates the process.
	Rollback(pid ids.PID, iid ids.IntervalID)
	// DeadAID records an assumption the process learned is denied.
	DeadAID(pid ids.PID, a ids.AID)
	// Compact records a compaction: the journal is emptied, every
	// interval but iid is dropped (its JournalIndex rebased to 0), and
	// base becomes the re-execution snapshot. An error aborts the
	// compaction (typically: the snapshot is not encodable).
	Compact(pid ids.PID, iid ids.IntervalID, base any) error
	// AutoDenied records that the liveness layer denied assumption a —
	// its owner was declared dead or its lease expired. Engine-level:
	// there is no owning local process, so unlike the hooks above it is
	// called without any process lock. Recovery surfaces the set via
	// durable.Recovered.Denied → Config.Denied, so a restart cannot
	// resurrect the orphaned speculation.
	AutoDenied(a ids.AID)
	// MessageConsumed records that a remote-origin message (SrcSeq != 0)
	// was discarded without entering any journal — dead letters,
	// denied-tag drops, purges — so recovery stops re-delivering it.
	// Unlike the other hooks it may be called without the process lock.
	// (Named to coexist with wire.DurableHooks' frame-level Consumed on a
	// single implementing type.)
	MessageConsumed(m *msg.Message)
}

// ProcExporter is an optional Persister extension: a per-process export
// index. The engine periodically (and at transplant time, forcibly)
// writes a self-contained snapshot of one process's replay state, so a
// foreign reader extracting that process from this node's WAL
// (durable.ReadProcesses) folds the newest index record plus the tail
// instead of the process's whole history. An error means the snapshot
// did not reach the log; the engine treats a forced (transplant-time)
// failure as fatal for the hand-off and a cadence failure as skippable.
type ProcExporter interface {
	ProcExport(pid ids.PID, snap *Restored) error
}

// TransplantRecorder is an optional Persister extension recording that
// this node adopted oldPid off dead node from, reincarnating it as
// newPid. Written before the reborn process spawns, so a crash
// mid-transplant recovers the adoption (durable.Recovered.Transplants)
// instead of losing the process a second time.
type TransplantRecorder interface {
	TransplantRecorded(from int, oldPid, newPid ids.PID) error
}

// Restored is the recovered pre-crash state of one user process, injected
// through Config.Restore and consumed by the first spawn that draws the
// matching PID. Spawn order (and therefore PID assignment) must be
// deterministic across restarts for restoration to attach to the right
// process — vpm allocates PIDs sequentially, so a node that spawns the
// same roots in the same order gets the same PIDs.
type Restored struct {
	// Intervals is the interval history, oldest first.
	Intervals []RestoredInterval
	// Entries is the replay journal.
	Entries []*journal.Entry
	// Dead lists assumptions known denied.
	Dead []ids.AID
	// Base/HasBase carry the latest compaction snapshot.
	Base    any
	HasBase bool
	// NextSeq is the next interval sequence number to allocate.
	NextSeq uint32
	// MaxEpoch is the highest interval epoch the pre-crash engine ever
	// issued for this process, including intervals rolled back before the
	// crash (which Intervals no longer lists). The new engine's epoch
	// allocator skips past it so stale control messages stay detectable.
	MaxEpoch uint32
	// Terminated marks a process whose speculative root was rolled back
	// before the crash; it is restored directly into the dead state.
	Terminated bool
	// Transplant marks state extracted from a DEAD FOREIGN node's WAL
	// (set only by Engine.AdoptProcesses, never by the local-recovery
	// fold). An ordinary restart trusts its speculative intervals and
	// re-fires their registrations; a transplant cannot — the corpse may
	// have executed past the replay frontier without logging, so
	// restoreLocked rolls the speculative suffix back and re-runs it.
	Transplant bool
}

// RestoredInterval is one interval record in flat (set-free) form.
type RestoredInterval struct {
	ID           ids.IntervalID
	Kind         interval.OpenKind
	JournalIndex int
	GuessAID     ids.AID
	Definite     bool
	IDO          []ids.AID
	UDO          []ids.AID
	Cut          []ids.AID
	IHA          []ids.AID
	IHD          []ids.AID
}

// takeRestored claims (and removes) the restored state for pid, if any.
func (e *Engine) takeRestored(pid ids.PID) *Restored {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.restore[pid]
	if r != nil {
		delete(e.restore, pid)
	}
	return r
}

// Process-side persistence helpers. All of them tolerate a nil Persister
// so the hot paths stay branch-cheap when durability is off.

func (p *Process) appendJournalLocked(e *journal.Entry) {
	p.jnl.Append(e)
	if per := p.eng.persist; per != nil {
		per.JournalAppend(p.proc.PID(), e)
		p.maybeExportLocked(per)
	}
}

func (p *Process) persistIntervalOpen(rec *interval.Record) {
	if per := p.eng.persist; per != nil {
		per.IntervalOpen(p.proc.PID(), rec)
	}
}

func (p *Process) persistIntervalState(rec *interval.Record) {
	if per := p.eng.persist; per != nil {
		per.IntervalState(p.proc.PID(), rec)
	}
}

func (p *Process) persistFinalize(iid ids.IntervalID) {
	if per := p.eng.persist; per != nil {
		per.IntervalFinalize(p.proc.PID(), iid)
	}
}

func (p *Process) persistRollback(iid ids.IntervalID) {
	if per := p.eng.persist; per != nil {
		per.Rollback(p.proc.PID(), iid)
	}
}

func (p *Process) persistDeadAID(a ids.AID) {
	if per := p.eng.persist; per != nil {
		per.DeadAID(p.proc.PID(), a)
	}
}

// persistConsumed marks a remote-origin message as consumed-without-
// journal. Local messages (SrcSeq == 0) have no WAL identity to retire.
func (p *Process) persistConsumed(m *msg.Message) {
	if per := p.eng.persist; per != nil && m.SrcSeq != 0 {
		per.MessageConsumed(m)
	}
}
