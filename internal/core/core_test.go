package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/journal"
	"github.com/hope-dist/hope/internal/trace"
)

const settleTimeout = 10 * time.Second

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng := NewEngine(cfg)
	t.Cleanup(eng.Shutdown)
	return eng
}

// TestRecordReplaysNondeterminism: a Ctx.Record value survives rollback
// re-execution unchanged.
func TestRecordReplaysNondeterminism(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, err := eng.NewAID()
	if err != nil {
		t.Fatalf("NewAID: %v", err)
	}

	var counter atomic.Int64
	var mu sync.Mutex
	var observed []int64

	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		v := ctx.Record(func() any { return counter.Add(1) }).(int64)
		ctx.Guess(x)
		mu.Lock()
		observed = append(observed, v)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	st := p.Snapshot()
	if st.Restarts == 0 {
		t.Fatal("process never rolled back")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) < 2 {
		t.Fatalf("observed %v, want at least two executions", observed)
	}
	for i, v := range observed {
		if v != observed[0] {
			t.Fatalf("execution %d recorded %d, first recorded %d: Record not replayed", i, v, observed[0])
		}
	}
	if counter.Load() != 1 {
		t.Fatalf("recorder function ran %d times, want 1", counter.Load())
	}
}

// TestDivergenceDetected: a body that behaves differently on replay is
// reported, not silently corrupted.
func TestDivergenceDetected(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()

	var runs atomic.Int64
	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		// Nondeterministic on purpose: the second execution performs a
		// different primitive sequence than the journal recorded.
		if runs.Add(1) == 1 {
			_ = ctx.Record(func() any { return 1 })
		} else {
			ctx.AidInit()
		}
		ctx.Guess(x)
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	st := p.Snapshot()
	var div *journal.DivergenceError
	if !errors.As(st.Err, &div) {
		t.Fatalf("err = %v, want DivergenceError", st.Err)
	}
}

// TestYieldUnwindsPendingRollback: a long computation with only Yield
// calls still reacts to rollback.
func TestYieldUnwindsPendingRollback(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()

	reached := make(chan struct{}, 1)
	var mu sync.Mutex
	finalBranch := ""
	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		if ctx.Guess(x) {
			select {
			case reached <- struct{}{}:
			default:
			}
			for { // spin until the rollback lands
				ctx.Yield()
				time.Sleep(50 * time.Microsecond)
			}
		}
		mu.Lock()
		finalBranch = "pessimistic"
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	<-reached
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	st := p.Snapshot()
	if !st.Completed {
		t.Fatalf("process did not complete: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if finalBranch != "pessimistic" {
		t.Fatalf("final branch = %q", finalBranch)
	}
}

// TestSpeculativeAndDependencies: introspection helpers reflect the
// interval state.
func TestSpeculativeAndDependencies(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()

	var mu sync.Mutex
	var specBefore, specAfter bool
	var deps []ids.AID
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		mu.Lock()
		specBefore = ctx.Speculative()
		mu.Unlock()
		ctx.Guess(x)
		mu.Lock()
		specAfter = ctx.Speculative()
		deps = ctx.Dependencies()
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	defer mu.Unlock()
	if specBefore {
		t.Fatal("root interval reported speculative")
	}
	if !specAfter {
		t.Fatal("post-guess interval reported definite")
	}
	if len(deps) != 1 || deps[0] != x {
		t.Fatalf("deps = %v, want [%v]", deps, x)
	}
}

// TestTryRecvJournalsMisses: a TryRecv miss replays as a miss even if a
// message has arrived by replay time.
func TestTryRecvJournalsMisses(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()

	var mu sync.Mutex
	var sequences [][]bool
	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		var seq []bool
		_, _, ok := ctx.TryRecv() // certainly a miss: nothing sent yet
		seq = append(seq, ok)
		ctx.Guess(x)
		_, _, err := ctx.Recv() // blocks until the probe message arrives
		if err != nil {
			return err
		}
		mu.Lock()
		sequences = append(sequences, seq)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}

	// Wait until p is parked in Recv — the TryRecv miss has certainly
	// happened — before feeding it, then deny to force a replay of the
	// journalled miss.
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle before probe")
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Send(p.PID(), "probe")
		return nil
	}); err != nil {
		t.Fatalf("spawn prober: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle before deny")
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	st := p.Snapshot()
	if st.Restarts == 0 {
		t.Fatal("never rolled back")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sequences) < 2 {
		t.Fatalf("want ≥2 completed executions, got %d", len(sequences))
	}
	for i, seq := range sequences {
		if len(seq) != 1 || seq[0] {
			t.Fatalf("execution %d: TryRecv sequence %v, want [false]", i, seq)
		}
	}
}

// TestShutdownUnblocksEverything: processes parked in Recv exit with
// ErrTerminated semantics and Shutdown returns promptly.
func TestShutdownUnblocksEverything(t *testing.T) {
	eng := NewEngine(Config{})
	for i := 0; i < 4; i++ {
		if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
			for {
				if _, _, err := ctx.Recv(); err != nil {
					return err
				}
			}
		}); err != nil {
			t.Fatalf("spawn: %v", err)
		}
	}
	done := make(chan struct{})
	go func() {
		eng.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung")
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error { return nil }); !errors.Is(err, ErrShutdown) {
		t.Fatalf("spawn after shutdown: err = %v, want ErrShutdown", err)
	}
}

// TestTracerObservesLifecycle: the tracer sees primitives, rollbacks,
// restarts and finalizations.
func TestTracerObservesLifecycle(t *testing.T) {
	rec := trace.NewRecorder()
	eng := newTestEngine(t, Config{Tracer: rec})
	x, _ := eng.NewAID()

	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Guess(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	if rec.Count(trace.Primitive) == 0 {
		t.Fatal("no primitive events")
	}
	if rec.Count(trace.Rollback) == 0 {
		t.Fatal("no rollback events")
	}
	if rec.Count(trace.Restart) == 0 {
		t.Fatal("no restart events")
	}
	if rec.Count(trace.AIDState) == 0 {
		t.Fatal("no AID state events")
	}
}

// TestFreeOfNotDependent: free_of of an unrelated assumption affirms it.
func TestFreeOfNotDependent(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()

	var mu sync.Mutex
	var free bool
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		f := ctx.FreeOf(x)
		mu.Lock()
		free = f
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	// x is affirmed by the free_of; a guesser should retain true.
	var mu2 sync.Mutex
	branch := ""
	g, err := eng.SpawnRoot(func(ctx *Ctx) error {
		if ctx.Guess(x) {
			mu2.Lock()
			branch = "optimistic"
			mu2.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("spawn guesser: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	if !free {
		t.Fatal("free_of reported dependent")
	}
	mu.Unlock()
	mu2.Lock()
	defer mu2.Unlock()
	if branch != "optimistic" {
		t.Fatalf("guesser branch = %q", branch)
	}
	if st := g.Snapshot(); !st.AllDefinite {
		t.Fatalf("guesser not definite: %+v", st)
	}
}

// TestNestedSpawnSpeculation: speculation propagates through a chain of
// spawns, and denial terminates the whole speculative subtree.
func TestNestedSpawnSpeculation(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()

	var mu sync.Mutex
	runs := make(map[string]int)
	bump := func(k string) {
		mu.Lock()
		runs[k]++
		mu.Unlock()
	}

	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		if ctx.Guess(x) {
			ctx.Spawn(func(c1 *Ctx) error {
				bump("child")
				c1.Spawn(func(c2 *Ctx) error {
					bump("grandchild")
					return nil
				})
				return nil
			})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle before deny")
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	if st := p.Snapshot(); st.Restarts == 0 {
		t.Fatalf("parent never rolled back: %+v", st)
	}
	// Both descendants ran speculatively and were terminated; the
	// re-execution takes the false branch and spawns nothing.
	terminated := 0
	for _, proc := range eng.Processes() {
		st := proc.Snapshot()
		if st.Terminated {
			terminated++
		}
	}
	if terminated != 2 {
		t.Fatalf("terminated %d processes, want 2 (child+grandchild)", terminated)
	}
	mu.Lock()
	defer mu.Unlock()
	if runs["child"] == 0 || runs["grandchild"] == 0 {
		t.Fatalf("descendants never ran speculatively: %v", runs)
	}
}

// TestHistorySnapshotConsistency: the snapshot reflects kinds and
// definiteness coherently.
func TestHistorySnapshotConsistency(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x, _ := eng.NewAID()
	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Guess(x)
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	h := p.HistorySnapshot()
	if len(h) != 2 {
		t.Fatalf("history = %v, want root+guess", h)
	}
	if h[0].Kind.String() != "root" || !h[0].Definite {
		t.Fatalf("root record wrong: %+v", h[0])
	}
	if h[1].GuessAID != x || h[1].Definite {
		t.Fatalf("guess record wrong: %+v", h[1])
	}
	if len(h[1].IDO) != 1 || h[1].IDO[0] != x {
		t.Fatalf("guess IDO = %v", h[1].IDO)
	}
}
