package core

import (
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/netsim"
)

// This file exercises the retract/revive machinery of DESIGN.md §4.9
// deterministically: a conditional affirm is withdrawn by its affirmer's
// rollback, and every dependent — including those that had resolved the
// assumption through the voided chain — ends up with the re-decided
// verdict.

// TestRetractThenDenyReachesDependents: B resolved X via A's conditional
// affirm (conditional on Y); Y is denied, so A rolls back, retracts the
// affirm, re-executes, and denies X — and B must take the pessimistic
// branch despite having replaced X away earlier.
func TestRetractThenDenyReachesDependents(t *testing.T) {
	eng := newTestEngine(t, Config{Transport: netsim.New(netsim.Constant(100 * time.Microsecond))})

	x, _ := eng.NewAID()
	y, _ := eng.NewAID()

	var mu sync.Mutex
	var bBranches []string

	// B guesses X before anything is affirmed.
	b, err := eng.SpawnRoot(func(ctx *Ctx) error {
		branch := "pessimistic"
		if ctx.Guess(x) {
			branch = "optimistic"
		}
		mu.Lock()
		bBranches = append(bBranches, branch)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn b: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle after b")
	}

	// A affirms X conditionally on Y; re-executed after Y's denial it
	// denies X instead.
	a, err := eng.SpawnRoot(func(ctx *Ctx) error {
		if ctx.Guess(y) {
			ctx.Affirm(x)
		} else {
			ctx.Deny(x)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("spawn a: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle after a")
	}

	// B is still speculative (X is Maybe, conditional on Y), as is A.
	if st := b.Snapshot(); st.AllDefinite {
		t.Fatalf("b definite while X is conditional: %+v", st)
	}

	// Deny Y: A rolls back, the affirm of X is retracted, B is revived
	// onto X, A's re-execution denies X, and B goes pessimistic.
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(y)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle after denying y")
	}

	ast, bst := a.Snapshot(), b.Snapshot()
	if ast.Restarts == 0 {
		t.Fatalf("a never rolled back: %+v", ast)
	}
	if bst.Restarts == 0 {
		t.Fatalf("b never rolled back despite the retracted chain: %+v", bst)
	}
	if !ast.AllDefinite || !bst.AllDefinite {
		t.Fatalf("not definite: a=%+v b=%+v", ast, bst)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bBranches) == 0 || bBranches[len(bBranches)-1] != "pessimistic" {
		t.Fatalf("b branches = %v, want final pessimistic", bBranches)
	}
	if eng.Violations() != 0 {
		t.Fatalf("%d violations in the deterministic retract scenario", eng.Violations())
	}
}

// TestRetractThenReaffirm: the same shape but the re-decision is another
// affirm (this time definite because Y's guess returned false and no new
// speculation remains) — B's optimistic branch must commit.
func TestRetractThenReaffirm(t *testing.T) {
	eng := newTestEngine(t, Config{Transport: netsim.New(netsim.Constant(100 * time.Microsecond))})

	x, _ := eng.NewAID()
	y, _ := eng.NewAID()

	var mu sync.Mutex
	var bBranch string
	b, err := eng.SpawnRoot(func(ctx *Ctx) error {
		branch := "pessimistic"
		if ctx.Guess(x) {
			branch = "optimistic"
		}
		mu.Lock()
		bBranch = branch
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn b: %v", err)
	}

	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Guess(y)  // speculation that will fail
		ctx.Affirm(x) // conditional on y the first time; definite on rerun
		return nil
	}); err != nil {
		t.Fatalf("spawn a: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle after a")
	}
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Deny(y)
		return nil
	}); err != nil {
		t.Fatalf("spawn denier: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle after denying y")
	}

	bst := b.Snapshot()
	if !bst.AllDefinite {
		t.Fatalf("b not definite: %+v", bst)
	}
	mu.Lock()
	defer mu.Unlock()
	if bBranch != "optimistic" {
		t.Fatalf("b branch = %q, want optimistic (x re-affirmed definitively)", bBranch)
	}
	if eng.Violations() != 0 {
		t.Fatalf("%d violations", eng.Violations())
	}
}
