package core

import (
	"fmt"

	"github.com/hope-dist/hope/internal/interval"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/trace"
)

// restoreLocked rebuilds this process from recovered pre-crash state
// instead of opening a fresh root interval. Called from bind with p.mu
// held, before the runner or dispatch goroutines start.
//
// Reconstruction re-installs the interval history, replay journal, dead
// set, and compaction base verbatim, then re-fires the control-plane
// sends whose loss a crash cannot otherwise repair: registrations and
// finalize fan-out are not journalled, and under group commit a send may
// die in the gap between its interval mutation reaching the WAL and its
// wire frame doing so. Re-firing is safe because every control message is
// idempotent at its AID (Guess re-adds to DOM, a duplicate unconditional
// Affirm/Deny of a resolved AID is ignored), and bounded because
// compaction keeps restored histories short.
//
// None of these re-fires are persisted as interval records again — the
// WAL already holds this state; only the outbound frames (FrameQueued)
// are logged, as for any send.
func (p *Process) restoreLocked(r *Restored) {
	pid := p.proc.PID()
	for _, ri := range r.Intervals {
		rec := interval.NewRecord(ri.ID, ri.Kind, ri.JournalIndex)
		rec.GuessAID = ri.GuessAID
		rec.Definite = ri.Definite
		for _, a := range ri.IDO {
			rec.IDO.Add(a)
		}
		for _, a := range ri.UDO {
			rec.UDO.Add(a)
		}
		for _, a := range ri.Cut {
			rec.Cut.Add(a)
		}
		for _, a := range ri.IHA {
			rec.IHA.Add(a)
		}
		for _, a := range ri.IHD {
			rec.IHD.Add(a)
		}
		p.history.Append(rec)
		if st := p.eng.stability; st != nil {
			// Feed the watermark tracker: a restored definite interval is
			// already settled (Issued bumps events and the epoch high-water
			// mark only); a speculative one is live again and must hold the
			// frontier back until it resolves.
			if rec.Definite {
				st.Issued(rec.ID.Epoch)
			} else {
				st.Opened(rec.ID.Epoch)
			}
		}
	}
	for _, e := range r.Entries {
		p.jnl.Append(e)
	}
	for _, a := range r.Dead {
		p.dead.Add(a)
	}
	p.base, p.hasBase = r.Base, r.HasBase
	p.seq = r.NextSeq
	p.curIdx = p.history.Len() - 1

	for _, rec := range p.history.Slice() {
		if rec.Definite {
			// Finalize fan-out may have been cut short by the crash;
			// repeat it. Dependents that already saw it ignore the copy.
			for _, y := range rec.IHA.Slice() {
				p.send(msg.Affirm(pid, rec.ID, y, nil))
			}
			for _, y := range rec.IHD.Slice() {
				p.send(msg.Deny(pid, rec.ID, y))
			}
			continue
		}
		for _, a := range rec.IDO.Slice() {
			p.send(msg.Guess(pid, rec.ID, a))
		}
		for _, a := range rec.Cut.Slice() {
			p.send(msg.CutProbe(pid, rec.ID, a))
		}
		if rec.Finalizable() {
			// The interval emptied its IDO before the crash but the
			// finalize marker never reached the WAL: finish the job.
			p.finalizeLocked(rec)
		}
	}

	p.eng.tracer.Emit(trace.Event{
		Kind: trace.Restart, PID: pid,
		Detail: fmt.Sprintf("restored from WAL: %d intervals, %d journal entries, %d dead AIDs, base=%v",
			p.history.Len(), p.jnl.Len(), p.dead.Len(), p.hasBase),
	})

	if r.Terminated {
		if p.runErr == nil {
			p.runErr = ErrTerminated
		}
		p.terminateLocked()
	}
}
