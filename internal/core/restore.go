package core

import (
	"fmt"

	"github.com/hope-dist/hope/internal/interval"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/trace"
)

// restoreLocked rebuilds this process from recovered pre-crash state
// instead of opening a fresh root interval. Called from bind with p.mu
// held, before the runner or dispatch goroutines start.
//
// Reconstruction re-installs the interval history, replay journal, dead
// set, and compaction base verbatim, then re-fires the control-plane
// sends whose loss a crash cannot otherwise repair: registrations and
// finalize fan-out are not journalled, and under group commit a send may
// die in the gap between its interval mutation reaching the WAL and its
// wire frame doing so. Re-firing is safe because every control message is
// idempotent at its AID (Guess re-adds to DOM, a duplicate unconditional
// Affirm/Deny of a resolved AID is ignored), and bounded because
// compaction keeps restored histories short.
//
// None of these re-fires are persisted as interval records again — the
// WAL already holds this state; only the outbound frames (FrameQueued)
// are logged, as for any send.
func (p *Process) restoreLocked(r *Restored) {
	pid := p.proc.PID()
	for _, ri := range r.Intervals {
		rec := interval.NewRecord(ri.ID, ri.Kind, ri.JournalIndex)
		rec.GuessAID = ri.GuessAID
		rec.Definite = ri.Definite
		for _, a := range ri.IDO {
			rec.IDO.Add(a)
		}
		for _, a := range ri.UDO {
			rec.UDO.Add(a)
		}
		for _, a := range ri.Cut {
			rec.Cut.Add(a)
		}
		for _, a := range ri.IHA {
			rec.IHA.Add(a)
		}
		for _, a := range ri.IHD {
			rec.IHD.Add(a)
		}
		p.history.Append(rec)
		if st := p.eng.stability; st != nil {
			// Feed the watermark tracker: a restored definite interval is
			// already settled (Issued bumps events and the epoch high-water
			// mark only); a speculative one is live again and must hold the
			// frontier back until it resolves.
			if rec.Definite {
				st.Issued(rec.ID.Epoch)
			} else {
				st.Opened(rec.ID.Epoch)
			}
		}
	}
	for _, e := range r.Entries {
		p.jnl.Append(e)
	}
	for _, a := range r.Dead {
		p.dead.Add(a)
	}
	p.base, p.hasBase = r.Base, r.HasBase
	p.seq = r.NextSeq
	p.curIdx = p.history.Len() - 1

	if r.Transplant {
		p.transplantResumeLocked()
	} else {
		for _, rec := range p.history.Slice() {
			if rec.Definite {
				// Finalize fan-out may have been cut short by the crash;
				// repeat it. Dependents that already saw it ignore the copy.
				for _, y := range rec.IHA.Slice() {
					p.send(msg.Affirm(pid, rec.ID, y, nil))
				}
				for _, y := range rec.IHD.Slice() {
					p.send(msg.Deny(pid, rec.ID, y))
				}
				continue
			}
			for _, a := range rec.IDO.Slice() {
				p.send(msg.Guess(pid, rec.ID, a))
			}
			for _, a := range rec.Cut.Slice() {
				p.send(msg.CutProbe(pid, rec.ID, a))
			}
			if rec.Finalizable() {
				// The interval emptied its IDO before the crash but the
				// finalize marker never reached the WAL: finish the job.
				p.finalizeLocked(rec)
			}
		}
	}

	p.eng.tracer.Emit(trace.Event{
		Kind: trace.Restart, PID: pid,
		Detail: fmt.Sprintf("restored from WAL: %d intervals, %d journal entries, %d dead AIDs, base=%v",
			p.history.Len(), p.jnl.Len(), p.dead.Len(), p.hasBase),
	})

	if r.Terminated {
		if p.runErr == nil {
			p.runErr = ErrTerminated
		}
		p.terminateLocked()
	}
}

// transplantResumeLocked resumes a process adopted off a dead node. The
// definite prefix of its history is trusted — those outcomes were
// durable on the corpse and externally visible, so only the finalize
// fan-out is repeated. The speculative suffix is NOT trusted: the corpse
// may have executed arbitrarily far past the last logged journal entry,
// so re-firing its registrations and resuming mid-interval could split
// the timeline (the corpse's sends exist in the world but not in our
// journal). Instead the suffix is rolled back through the live rollback
// machinery — which retracts its registrations, denies the assumptions
// it minted, and requeues its surviving receives — and re-run from the
// replay frontier.
//
// The one interval that cannot be rolled back is a speculative ROOT:
// rolling back a root terminates the process (§ rollbackLocked). A
// speculative root is the replay frontier by definition — nothing before
// it exists — so it is trusted like an ordinary restart's.
func (p *Process) transplantResumeLocked() {
	pid := p.proc.PID()
	var target *interval.Record
	for i, rec := range p.history.Slice() {
		if rec.Definite {
			for _, y := range rec.IHA.Slice() {
				p.send(msg.Affirm(pid, rec.ID, y, nil))
			}
			for _, y := range rec.IHD.Slice() {
				p.send(msg.Deny(pid, rec.ID, y))
			}
			continue
		}
		if i == 0 {
			// Speculative root: trust it (see above).
			for _, a := range rec.IDO.Slice() {
				p.send(msg.Guess(pid, rec.ID, a))
			}
			for _, a := range rec.Cut.Slice() {
				p.send(msg.CutProbe(pid, rec.ID, a))
			}
			if rec.Finalizable() {
				p.finalizeLocked(rec)
			}
			continue
		}
		target = rec
		break
	}
	if target != nil {
		p.eng.tracer.Emit(trace.Event{
			Kind: trace.Rollback, PID: pid, Interval: target.ID,
			Detail: "transplant: rolling back speculative suffix above the replay frontier",
		})
		p.rollbackLocked(target)
	}
}
