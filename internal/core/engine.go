// Package core implements the HOPE engine: it binds the virtual process
// machine, the replay journal, the interval histories, and the AID
// processes into the wait-free algorithm of the paper's Section 5.
//
// A user process is a deterministic body function driven through a Ctx.
// All HOPE primitives perform only local bookkeeping plus asynchronous
// sends — no primitive ever waits for a remote reply (the paper's central
// design criterion). Rollback is realized by journal truncation and body
// re-execution with replay; see internal/journal and DESIGN.md §2.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hope-dist/hope/internal/aid"
	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/interval"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/trace"
	"github.com/hope-dist/hope/internal/transport"
	"github.com/hope-dist/hope/internal/vpm"
)

// Body is a HOPE user-process body. Bodies must be deterministic given
// the interactions performed through ctx (the journal replays them after
// a rollback); outside nondeterminism must go through Ctx.Record.
type Body func(ctx *Ctx) error

// ErrTerminated is reported by processes whose speculative root interval
// was rolled back (the process "should never have existed").
var ErrTerminated = errors.New("core: process terminated by rollback of speculative root")

// ErrShutdown is reported for processes still running at engine shutdown.
var ErrShutdown = errors.New("core: engine shut down")

// Engine hosts a HOPE system: user processes, AID processes, and the
// transport between them.
type Engine struct {
	machine *vpm.Machine
	alg     interval.Algorithm
	tracer  trace.Tracer
	epochs  ids.EpochAllocator
	persist Persister
	restore map[ids.PID]*Restored

	// violations counts protocol violations observed at runtime:
	// conflicting affirm/deny (the paper's "user error") and the
	// documented premature-commit residual (DESIGN.md §4.9).
	violations atomic.Int64

	// Speculation leases (see liveness.go). liveness is nil when the
	// layer is disabled; autoDenied counts liveness-triggered denials.
	liveness   *LivenessConfig
	leaseStop  chan struct{}
	leaseDone  chan struct{}
	autoDenied atomic.Int64

	// stability, when non-nil, puts the engine in revocable-commit mode:
	// interval lifecycle events feed the watermark tracker, Externalize
	// output is gated on frontier coverage, and uncovered definite
	// intervals can be un-finalized (see stability.go).
	stability Stability

	// router, when non-nil, routes AID adjudication to ring owners and
	// hosts this node's shard of assumption machines (see route.go).
	router *router

	// Transplant state (see transplant.go): the old→new incarnation map
	// consulted by the outbound translation chokepoint, frames parked
	// until an adopter announces, and the fast-path gate that keeps the
	// chokepoint to one atomic load while no mapping exists.
	xlateOn     atomic.Bool
	xmu         sync.RWMutex
	transplants map[ids.PID]ids.PID
	xparked     []*msg.Message

	mu      sync.Mutex
	procs   map[ids.PID]*Process
	aids    map[ids.AID]*vpm.Proc
	archive map[ids.AID]bool // collected assumptions → final verdict
	closing bool

	runners sync.WaitGroup
}

// Config parameterizes a new engine.
type Config struct {
	// Transport carries the engine's messages. Nil means a synchronous
	// in-process transport (transport.NewLocal); simulations pass a
	// netsim.Net, distributed nodes a wire.Node. The engine takes
	// ownership: Shutdown closes it, so a Transport (and hence a Config
	// holding one) must not be reused across engines.
	Transport transport.Transport
	// PIDBase, when nonzero, is the exclusive lower bound of the PID
	// namespace this engine allocates from. Distributed deployments give
	// each node a disjoint base (wire.PIDBase) so every PID is globally
	// unique and identifies its owning node.
	PIDBase ids.PID
	// Algorithm selects Control's variant; the zero value means
	// Algorithm2 (cycle detection on), the production default.
	Algorithm interval.Algorithm
	// Tracer receives runtime events (nil = discard).
	Tracer trace.Tracer
	// Persist, when non-nil, receives the write-ahead-log callbacks that
	// make user-process state crash-recoverable (see Persister).
	Persist Persister
	// Restore maps PIDs to pre-crash state recovered from a WAL. The
	// first spawn that draws a mapped PID is rebuilt from it instead of
	// starting fresh; see Restored for the determinism requirement.
	Restore map[ids.PID]*Restored
	// Liveness, when non-nil with a positive Lease, enables speculation
	// leases: assumptions that stay speculative past their lease (or
	// whose owning node is declared dead) are auto-denied so dependents
	// roll back instead of waiting forever. See liveness.go.
	Liveness *LivenessConfig
	// Denied seeds the archive with assumptions already auto-denied by a
	// previous incarnation (recovered from the WAL), so a restart cannot
	// resurrect an orphaned speculation: re-guesses answer false locally
	// and replayed dependents are re-rolled-back by the lease sweeper.
	Denied []ids.AID
	// Stability, when non-nil, enables the global commit watermark
	// (DESIGN.md §12): local finalize stays wait-free but becomes
	// revocable until the stability frontier covers the interval, and
	// Ctx.Externalize output is withheld until coverage. Every engine in
	// a deployment must agree on whether Stability is set; mixing modes
	// across nodes (or across restarts over one WAL) is unsupported.
	Stability Stability
	// Routing, when non-nil, enables ownership-driven AID routing
	// (DESIGN.md §13): adjudications go to the ring-designated owner for
	// the current view epoch, stale-view senders are NACKed and retry,
	// and hosted machines migrate on view changes instead of being
	// denied. Every engine in a deployment must agree on whether Routing
	// is set.
	Routing *RoutingConfig
}

// NewEngine constructs an engine over its transport.
func NewEngine(cfg Config) *Engine {
	alg := cfg.Algorithm
	if alg == 0 {
		alg = interval.Algorithm2
	}
	tr := cfg.Tracer
	if tr == nil {
		tr = trace.Nop
	}
	net := cfg.Transport
	if net == nil {
		net = transport.NewLocal()
	}
	e := &Engine{
		alg:     alg,
		persist: cfg.Persist,
		restore: cfg.Restore,
		procs:   make(map[ids.PID]*Process),
		aids:    make(map[ids.AID]*vpm.Proc),
		archive: make(map[ids.AID]bool),
	}
	// Every outbound message passes the transplant-translation chokepoint
	// (one atomic load until a mapping is installed; see transplant.go).
	e.machine = vpm.New(&xlateTransport{Transport: net, eng: e})
	if cfg.PIDBase != 0 {
		e.machine.SkipPIDs(cfg.PIDBase)
	}
	// Intervals opened after a restore must never collide with a restored
	// interval's (Seq, Epoch): skip the epoch space past everything the
	// recovered histories carry.
	var maxEpoch uint32
	for _, r := range cfg.Restore {
		if r.MaxEpoch > maxEpoch {
			maxEpoch = r.MaxEpoch
		}
		for _, ri := range r.Intervals {
			if ri.ID.Epoch > maxEpoch {
				maxEpoch = ri.ID.Epoch
			}
		}
	}
	e.epochs.Skip(maxEpoch)
	e.tracer = violationCounter{inner: tr, count: &e.violations}
	for _, a := range cfg.Denied {
		e.archive[a] = false
	}
	e.stability = cfg.Stability
	if rc := cfg.Routing.norm(); rc != nil {
		e.router = newRouter(e, rc)
		if err := e.router.start(); err != nil {
			// The well-known router PID is reserved for us; a collision
			// means the config is broken, not a runtime condition.
			panic(err)
		}
	}
	e.liveness = cfg.Liveness.norm()
	e.leaseStop = make(chan struct{})
	e.leaseDone = make(chan struct{})
	if e.liveness != nil {
		go e.leaseLoop()
	} else {
		close(e.leaseDone)
	}
	return e
}

// violationCounter tallies violation events on their way to the
// configured tracer, giving tracer-less callers an integrity signal.
type violationCounter struct {
	inner trace.Tracer
	count *atomic.Int64
}

// Emit implements trace.Tracer.
func (t violationCounter) Emit(e trace.Event) {
	if e.Kind == trace.Violation {
		t.count.Add(1)
	}
	t.inner.Emit(e)
}

// Violations returns how many protocol violations the runtime has
// observed: conflicting affirm/deny (the paper's "user error") or the
// premature-commit residual documented in DESIGN.md §4.9. A nonzero
// count means some committed state may not satisfy Theorem 5.1.
func (e *Engine) Violations() int64 {
	return e.violations.Load()
}

// Net exposes the transport, mainly for message-count experiments.
func (e *Engine) Net() transport.Transport { return e.machine.Net() }

// Algorithm returns the Control variant in use.
func (e *Engine) Algorithm() interval.Algorithm { return e.alg }

// Tracer returns the engine's tracer.
func (e *Engine) Tracer() trace.Tracer { return e.tracer }

// SpawnRoot starts a definite (non-speculative) top-level user process.
func (e *Engine) SpawnRoot(body Body) (*Process, error) {
	return e.spawn(body, nil)
}

// NewAID spawns a fresh AID process and returns its identifier. Exposed
// on the engine so that assumptions can be created before the processes
// that use them (the paper's aid_init). With ownership routing on, no
// local process is spawned: the AID is an identity only, and its machine
// is lazily hosted by whichever node the ring designates when the first
// adjudication arrives.
func (e *Engine) NewAID() (ids.AID, error) {
	if e.router != nil {
		return ids.AID(e.machine.AllocPID()), nil
	}
	proc, err := e.machine.Spawn(aid.RunMode(e.tracer, e.stability != nil))
	if err != nil {
		return ids.NilAID, fmt.Errorf("spawn aid: %w", err)
	}
	a := ids.AID(proc.PID())
	e.mu.Lock()
	e.aids[a] = proc
	e.mu.Unlock()
	return a, nil
}

// spawn creates a user process whose root interval depends on birthIDO
// (nil for a definite root).
func (e *Engine) spawn(body Body, birthIDO []ids.AID) (*Process, error) {
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return nil, ErrShutdown
	}
	e.mu.Unlock()

	p := newProcess(e, body, birthIDO)
	proc, err := e.machine.Spawn(p.dispatch)
	if err != nil {
		return nil, fmt.Errorf("spawn user process: %w", err)
	}
	p.bind(proc)

	e.mu.Lock()
	e.procs[p.PID()] = p
	e.mu.Unlock()

	e.runners.Add(1)
	go func() {
		defer e.runners.Done()
		p.run()
	}()
	return p, nil
}

// Process returns the live process with the given PID, or nil.
func (e *Engine) Process(pid ids.PID) *Process {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.procs[pid]
}

// Processes returns a snapshot of all user processes ever spawned and
// still tracked.
func (e *Engine) Processes() []*Process {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Process, 0, len(e.procs))
	for _, p := range e.procs {
		out = append(out, p)
	}
	return out
}

// Shutdown terminates every process and closes the transport. It is safe
// to call once; processes observe ErrShutdown if still running.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return
	}
	e.closing = true
	procs := make([]*Process, 0, len(e.procs))
	for _, p := range e.procs {
		procs = append(procs, p)
	}
	e.mu.Unlock()

	// Stop the lease sweeper before the machine: a sweep mid-teardown
	// would synthesize denials into a transport being closed. The
	// routing retry pacer stops for the same reason.
	close(e.leaseStop)
	<-e.leaseDone
	if e.router != nil {
		e.router.shutdown()
	}
	for _, p := range procs {
		p.shutdown()
	}
	e.runners.Wait()
	e.machine.Shutdown()
}

// Settle blocks until the system is quiescent — no in-flight transport
// messages, every mailbox drained, every user process parked (completed,
// waiting in Recv, or terminated) — or the timeout elapses. It returns
// true on quiescence. Tests and benchmarks use it as the "run to
// completion" barrier; it does not guarantee every interval is definite
// (an unresolved assumption legitimately leaves speculation pending).
func (e *Engine) Settle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	stable := 0
	for {
		// Poll rather than block on transport drain: a livelocked system
		// (e.g. Algorithm 1 on a dependency cycle) never drains, and
		// Settle must still honour its timeout.
		if e.machine.Net().Inflight() == 0 && e.quiet() {
			stable++
			if stable >= 3 {
				return true
			}
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// quiet reports whether every mailbox is empty and every process parked.
func (e *Engine) quiet() bool {
	e.mu.Lock()
	procs := make([]*Process, 0, len(e.procs))
	for _, p := range e.procs {
		procs = append(procs, p)
	}
	aids := make([]*vpm.Proc, 0, len(e.aids))
	for _, ap := range e.aids {
		aids = append(aids, ap)
	}
	e.mu.Unlock()

	for _, ap := range aids {
		if ap.Box().Len() > 0 {
			return false
		}
	}
	for _, p := range procs {
		if !p.parked() {
			return false
		}
	}
	if rt := e.router; rt != nil {
		// An undelivered routed adjudication — in the router's mailbox or
		// parked awaiting a retry — is in-flight protocol traffic.
		if rp := e.machine.Lookup(rt.cfg.RouterPID(rt.cfg.Self)); rp != nil && rp.Box().Len() > 0 {
			return false
		}
		if rt.pendingRetries() > 0 {
			return false
		}
	}
	return true
}
