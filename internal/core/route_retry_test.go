package core_test

import (
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/aid"
	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/netsim"
	"github.com/hope-dist/hope/internal/transport"
)

// The routing retry queue's two liveness properties, pinned without the
// pacer's help: a view change drains parked messages immediately
// (OwnershipChanged ends with a flush), and messages whose owner stays
// unknown survive repeated re-parks without duplication or reordering.
// Both clusters run with RetryEvery set to an hour, so any delivery the
// tests observe can only have come from an explicit flush.

// newRetryCluster is newRouteCluster with a configurable retry pace and
// an optional per-node transport wrapper (for frame capture).
func newRetryCluster(net transport.Transport, nodes []int, retryEvery time.Duration, wrap func(node int, tr transport.Transport) transport.Transport) *routeCluster {
	c := &routeCluster{
		engines: make(map[int]*core.Engine),
		views:   make(map[int]*routeView),
	}
	for _, node := range nodes {
		view := &routeView{}
		c.views[node] = view
		self := node
		cfg := core.Config{
			PIDBase:   ids.PID(node) << routePIDBits,
			Transport: net,
			Routing: &core.RoutingConfig{
				Self:      self,
				NodeOf:    routeNode,
				RouterPID: routeRouterPID,
				Owner: func(ids.AID) (int, uint64, bool) {
					return view.get()
				},
				Ship: func(to int, payload []byte) bool {
					target := c.engines[to]
					if target == nil {
						return false
					}
					_, err := target.InstallTransfer(payload)
					return err == nil
				},
				RetryEvery: retryEvery,
			},
		}
		if wrap != nil {
			cfg.Transport = wrap(node, net)
		}
		c.engines[node] = core.NewEngine(cfg)
	}
	return c
}

// recordNet captures every Batch frame a node emits, forwarding all
// traffic untouched. Close is a no-op: the underlying net is shared.
type recordNet struct {
	transport.Transport
	mu      sync.Mutex
	batches [][]*msg.Message
}

func (t *recordNet) Send(m *msg.Message) {
	if m.Kind == msg.KindBatch {
		if inner, ok := m.Payload.([]*msg.Message); ok {
			t.mu.Lock()
			t.batches = append(t.batches, append([]*msg.Message(nil), inner...))
			t.mu.Unlock()
		}
	}
	t.Transport.Send(m)
}

func (t *recordNet) Close() {}

func (t *recordNet) snapshot() [][]*msg.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([][]*msg.Message(nil), t.batches...)
}

// TestRetryQueueViewChangeDrain parks a Guess during bootstrap (no view
// known anywhere) and asserts the first view change delivers it without
// waiting for the retry pacer: OwnershipChanged is the queue's wake-up
// call.
func TestRetryQueueViewChangeDrain(t *testing.T) {
	net := netsim.New(netsim.Constant(100 * time.Microsecond))
	defer net.Close()
	c := newRetryCluster(net, []int{1, 2}, time.Hour, nil)
	defer c.shutdown()
	// No view is set anywhere: every routed send must park.

	a, err := c.engines[1].NewAID()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	outcome := false
	issued := make(chan struct{})
	var once sync.Once
	if _, err := c.engines[1].SpawnRoot(func(ctx *core.Ctx) error {
		ok := ctx.Guess(a)
		mu.Lock()
		outcome = ok
		mu.Unlock()
		once.Do(func() { close(issued) })
		_, _, err := ctx.Recv()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	<-issued // the Guess has been sent — and, with no view known, parked

	time.Sleep(20 * time.Millisecond)
	if _, ok := c.engines[2].HostedState(a); ok {
		t.Fatal("guess reached an owner while no view was known")
	}
	if s := c.engines[1].RoutingStats(); s.Retries != 0 {
		t.Fatalf("retries counted before any view existed: %+v", s)
	}

	// The view arrives. The pacer is an hour away, so the prompt delivery
	// below can only come from OwnershipChanged's flush.
	for _, v := range c.views {
		v.set(2, 1)
	}
	c.engines[1].OwnershipChanged()
	routeWaitFor(t, "the parked guess to reach the new owner", func() bool {
		st, ok := c.engines[2].HostedState(a)
		return ok && st == aid.Hot
	})
	if s := c.engines[1].RoutingStats(); s.Retries != 1 {
		t.Errorf("sender Retries = %d, want 1: %+v", s.Retries, s)
	}

	affirmFrom(t, c.engines[1], a)
	routeWaitFor(t, "the drained guess to be affirmed", func() bool {
		st, ok := c.engines[2].HostedState(a)
		return ok && st == aid.True
	})
	routeWaitFor(t, "the guessing interval to finalize", func() bool {
		mu.Lock()
		ok := outcome
		mu.Unlock()
		if !ok {
			return false
		}
		for _, p := range c.engines[1].Processes() {
			for _, ii := range p.HistorySnapshot() {
				if ii.GuessAID == a && ii.Definite {
					return true
				}
			}
		}
		return false
	})
	for node, e := range c.engines {
		if !e.Settle(30 * time.Second) {
			t.Fatalf("engine %d did not settle", node)
		}
		if v := e.Violations(); v != 0 {
			t.Errorf("engine %d saw %d protocol violations", node, v)
		}
	}
}

// TestRetryQueueReparkOrder parks several guesses while the owner is
// unknown, re-parks them through repeated view changes that resolve
// nothing, and asserts the eventual flush emits them as one Batch frame
// in their original order — no loss, no duplication, no reordering —
// applied exactly once at the owner.
func TestRetryQueueReparkOrder(t *testing.T) {
	net := netsim.New(netsim.Constant(100 * time.Microsecond))
	defer net.Close()
	rec := &recordNet{}
	c := newRetryCluster(net, []int{1, 2}, time.Hour, func(node int, tr transport.Transport) transport.Transport {
		if node != 1 {
			return tr
		}
		rec.Transport = tr
		return rec
	})
	defer c.shutdown()

	// One guesser per AID: nested guesses inside a single process re-send
	// their whole dependency set per interval, which is correct but makes
	// the parked count quadratic. Spawning sequentially (waiting for each
	// park before the next spawn) pins the queue's insertion order.
	const n = 5
	aids := make([]ids.AID, n)
	for i := range aids {
		a, err := c.engines[1].NewAID()
		if err != nil {
			t.Fatal(err)
		}
		aids[i] = a
		issued := make(chan struct{})
		var once sync.Once
		if _, err := c.engines[1].SpawnRoot(func(ctx *core.Ctx) error {
			ctx.Guess(a)
			once.Do(func() { close(issued) })
			_, _, err := ctx.Recv()
			return err
		}); err != nil {
			t.Fatal(err)
		}
		<-issued // the Guess has been sent — and, with no view known, parked
	}

	// View changes that resolve no owner: each flush must re-park the
	// whole queue intact, emitting nothing.
	c.engines[1].OwnershipChanged()
	c.engines[1].OwnershipChanged()
	time.Sleep(20 * time.Millisecond)
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("flush emitted %d batches while the owner was unknown", len(got))
	}
	if _, ok := c.engines[2].HostedState(aids[0]); ok {
		t.Fatal("a re-parked guess leaked to the owner")
	}

	// The owner becomes known: one flush, one Batch, original order.
	for _, v := range c.views {
		v.set(2, 1)
	}
	c.engines[1].OwnershipChanged()
	routeWaitFor(t, "every parked guess to reach the owner", func() bool {
		for _, a := range aids {
			if st, ok := c.engines[2].HostedState(a); !ok || st != aid.Hot {
				return false
			}
		}
		return true
	})

	batches := rec.snapshot()
	if len(batches) != 1 {
		t.Fatalf("drain emitted %d Batch frames, want 1", len(batches))
	}
	inner := batches[0]
	if len(inner) != n {
		t.Fatalf("batch carried %d messages, want %d", len(inner), n)
	}
	for i, m := range inner {
		if m.Kind != msg.KindGuess {
			t.Errorf("batch[%d] is %s, want Guess", i, m.Kind)
		}
		if m.AID != aids[i] {
			t.Errorf("batch[%d] carries %v, want %v — re-parks reordered the queue", i, m.AID, aids[i])
		}
	}
	s1 := c.engines[1].RoutingStats()
	if s1.Retries != n || s1.Batched != n {
		t.Errorf("sender stats Retries=%d Batched=%d, want %d/%d: %+v", s1.Retries, s1.Batched, n, n, s1)
	}
	s2 := c.engines[2].RoutingStats()
	if s2.Applied != n || s2.Duplicates != 0 || s2.Nacked != 0 {
		t.Errorf("owner stats Applied=%d Duplicates=%d Nacked=%d, want %d/0/0", s2.Applied, s2.Duplicates, s2.Nacked, n)
	}

	if _, err := c.engines[1].SpawnRoot(func(ctx *core.Ctx) error {
		for _, a := range aids {
			ctx.Affirm(a)
		}
		_, _, err := ctx.Recv()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	routeWaitFor(t, "every guess to be affirmed", func() bool {
		for _, a := range aids {
			if st, ok := c.engines[2].HostedState(a); !ok || st != aid.True {
				return false
			}
		}
		return true
	})
	for node, e := range c.engines {
		if !e.Settle(30 * time.Second) {
			t.Fatalf("engine %d did not settle", node)
		}
		if v := e.Violations(); v != 0 {
			t.Errorf("engine %d saw %d protocol violations", node, v)
		}
	}
}
