package core

import (
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/ids"
)

// waitCond polls cond until it returns true or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// remoteAID fabricates an assumption identifier owned by a process this
// engine does not host — the core-level stand-in for an AID allocated on
// another node. Guessing it opens a speculative interval whose AddDOM
// dead-letters; nothing local can ever resolve it.
func remoteAID(n uint64) ids.AID { return ids.AID(1_000_000 + n) }

// TestLeaseExpiryAutoDenies: an assumption that stays Hot past its lease
// with nobody affirming or denying is auto-denied by the sweeper. The
// engine hosts the AID process here, so the denial takes the protocol
// path — a real Deny into the AID process, Rollback fan-out to the
// dependent — and the re-executed body observes Guess = false.
func TestLeaseExpiryAutoDenies(t *testing.T) {
	eng := newTestEngine(t, Config{Liveness: &LivenessConfig{
		Lease:      150 * time.Millisecond,
		CheckEvery: 10 * time.Millisecond,
	}})

	var mu sync.Mutex
	var observed []bool
	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		x := ctx.AidInit()
		ok := ctx.Guess(x)
		mu.Lock()
		observed = append(observed, ok)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}

	waitCond(t, 10*time.Second, "auto-deny", func() bool { return eng.AutoDenied() == 1 })
	waitCond(t, 10*time.Second, "definite history", func() bool {
		st := p.Snapshot()
		return st.Completed && st.AllDefinite
	})
	st := p.Snapshot()
	if st.Restarts == 0 {
		t.Fatal("dependent never rolled back")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) < 2 || observed[0] != true || observed[len(observed)-1] != false {
		t.Fatalf("observed guesses %v, want optimistic true then final false", observed)
	}
}

// TestOwnerDeadAutoDenies: an assumption whose (fabricated) remote owner
// is reported dead by the Owner callback is denied on the fast path —
// well before its generous lease expires. The dead owner hosted the AID
// process, so the engine must synthesize the Rollback fan-out itself.
func TestOwnerDeadAutoDenies(t *testing.T) {
	x := remoteAID(1)
	var dead sync.Map // set after the guess is in flight
	eng := newTestEngine(t, Config{Liveness: &LivenessConfig{
		Lease:      time.Hour, // expiry must not be what fires
		CheckEvery: 10 * time.Millisecond,
		Owner: func(a ids.AID) OwnerStatus {
			_, d := dead.Load(a)
			return OwnerStatus{Remote: true, Dead: d}
		},
	}})

	var mu sync.Mutex
	var observed []bool
	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ok := ctx.Guess(x)
		mu.Lock()
		observed = append(observed, ok)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	waitCond(t, 10*time.Second, "speculative completion", func() bool {
		st := p.Snapshot()
		return st.Completed && !st.AllDefinite
	})
	if got := eng.AutoDenied(); got != 0 {
		t.Fatalf("auto-denied %d assumptions while the owner was alive", got)
	}

	dead.Store(x, true)
	waitCond(t, 10*time.Second, "auto-deny after owner death", func() bool { return eng.AutoDenied() == 1 })
	waitCond(t, 10*time.Second, "definite history", func() bool {
		st := p.Snapshot()
		return st.Completed && st.AllDefinite
	})
	if v, ok := eng.Archived(x); !ok || v {
		t.Fatalf("Archived(%v) = %v,%v, want false,true", x, v, ok)
	}
	mu.Lock()
	defer mu.Unlock()
	if observed[len(observed)-1] != false {
		t.Fatalf("observed guesses %v, want final false", observed)
	}
}

// TestOwnerTrafficRefreshesLease: a slow-but-alive remote owner — fresh
// LastHeard, not dead — must not be timed out, no matter how many lease
// periods pass without resolution.
func TestOwnerTrafficRefreshesLease(t *testing.T) {
	x := remoteAID(2)
	eng := newTestEngine(t, Config{Liveness: &LivenessConfig{
		Lease:      50 * time.Millisecond,
		CheckEvery: 5 * time.Millisecond,
		Owner: func(ids.AID) OwnerStatus {
			return OwnerStatus{Remote: true, LastHeard: time.Now()}
		},
	}})
	if _, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Guess(x)
		return nil
	}); err != nil {
		t.Fatalf("spawn: %v", err)
	}

	deadline := time.Now().Add(500 * time.Millisecond) // 10 lease periods
	for time.Now().Before(deadline) {
		if got := eng.AutoDenied(); got != 0 {
			t.Fatalf("auto-denied %d assumptions despite continuous owner traffic", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAutoDenyIdempotent: the second AutoDeny of the same assumption is
// a no-op — the archive already records the verdict, so repeated sweeps
// (or a detector callback racing the lease) cannot double-deny.
func TestAutoDenyIdempotent(t *testing.T) {
	eng := newTestEngine(t, Config{})
	x := remoteAID(3)
	if !eng.AutoDeny(x, "test") {
		t.Fatal("first AutoDeny reported no-op")
	}
	if eng.AutoDeny(x, "test") {
		t.Fatal("second AutoDeny of the same assumption was not a no-op")
	}
	if got := eng.AutoDenied(); got != 1 {
		t.Fatalf("AutoDenied = %d, want 1", got)
	}
}

// TestDenyOwnedSelective: DenyOwned touches exactly the speculative
// assumptions whose owning PID matches — the other node's assumptions
// stay Hot.
func TestDenyOwnedSelective(t *testing.T) {
	doomed, spared := remoteAID(10), remoteAID(2_000_000)
	eng := newTestEngine(t, Config{})

	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ctx.Guess(doomed)
		ctx.Guess(spared)
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	waitCond(t, 10*time.Second, "speculative completion", func() bool { return p.Snapshot().Completed })

	n := eng.DenyOwned(func(pid ids.PID) bool { return pid == doomed.PID() }, "node declared dead")
	if n != 1 {
		t.Fatalf("DenyOwned denied %d assumptions, want 1", n)
	}
	if v, ok := eng.Archived(doomed); !ok || v {
		t.Fatalf("Archived(doomed) = %v,%v, want false,true", v, ok)
	}
	if _, ok := eng.Archived(spared); ok {
		t.Fatal("assumption owned by a live node was archived")
	}
}

// TestDeniedSeedAnswersFalse: Config.Denied (the WAL's auto-deny records,
// replayed at restart) pre-archives the verdict, so a rebooted node
// answers guesses on an orphaned assumption false immediately — the dead
// owner's speculation is not resurrected, and no new denial is needed.
func TestDeniedSeedAnswersFalse(t *testing.T) {
	x := remoteAID(4)
	eng := newTestEngine(t, Config{
		Denied:   []ids.AID{x},
		Liveness: &LivenessConfig{Lease: time.Hour, CheckEvery: 10 * time.Millisecond},
	})

	var mu sync.Mutex
	var observed []bool
	p, err := eng.SpawnRoot(func(ctx *Ctx) error {
		ok := ctx.Guess(x)
		mu.Lock()
		observed = append(observed, ok)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	st := p.Snapshot()
	if !st.Completed || !st.AllDefinite {
		t.Fatalf("status = %+v, want completed and definite", st)
	}
	if st.Restarts != 0 {
		t.Fatalf("process restarted %d times: the archived verdict should answer without speculation", st.Restarts)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) != 1 || observed[0] != false {
		t.Fatalf("observed guesses %v, want a single immediate false", observed)
	}
	if got := eng.AutoDenied(); got != 0 {
		t.Fatalf("restart re-denied %d assumptions; archive should have answered", got)
	}
}
