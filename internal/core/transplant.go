package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/journal"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/trace"
	"github.com/hope-dist/hope/internal/transport"
)

// Process transplant (DESIGN.md §13): when a member dies for good, each
// survivor adopts its ring slice of the corpse's user processes by
// extracting their replay state from the dead node's WAL
// (durable.ReadProcesses), deterministically replaying it into a fresh
// process under the survivor's PID namespace, and resuming from the
// replay frontier.
//
// The adopted state is deliberately NOT rewritten: the reborn process
// keeps its old interval IDs (Proc = corpse PID) and its journal keeps
// old From/To/Child PIDs verbatim, so inbound control messages and
// ring-owner machine state — both of which reference the old identity —
// match without a translation table threaded through the engine.
// Translation happens only at the messaging layer: an outbound
// chokepoint rewrites the destination of anything addressed to a mapped
// corpse PID, and the wire layer hands frames bound for a dead node back
// to the engine (RequeueTransplant) to be forwarded or parked until the
// adopter's announcement arrives. Intervals opened after the transplant
// use the reborn PID, so the two incarnations' IDs can never collide.
//
// At-most-one-incarnation fence: the process ring assigns each corpse
// PID to exactly one survivor per agreed view, and InstallTransplantMap
// is first-mapping-wins — a second adoption of the same PID (a view
// disagreement, a replayed announcement) is refused before it spawns, so
// no two incarnations of one client process can both externalize.

// exportEvery is the per-process export-index cadence, in journal
// appends. Each export (durable recProcIndex) replaces the process's
// folded history in one record, so a foreign reader extracting the
// process pays for the tail since the last export, not the whole life.
const exportEvery = 64

// TransplantPair maps a dead incarnation to its reborn one.
type TransplantPair struct {
	Old ids.PID // PID on the dead node
	New ids.PID // adopted incarnation in the survivor's namespace
}

// xlateTransport is the outbound PID-translation chokepoint: every send
// from the machine (user processes, the router, liveness denials,
// reinjected corpse traffic) passes through it, and anything addressed
// to a mapped corpse PID is rewritten to the adopted incarnation. The
// gate is a single atomic load until the first mapping is installed.
type xlateTransport struct {
	transport.Transport
	eng *Engine
}

// Send implements transport.Transport.
func (t *xlateTransport) Send(m *msg.Message) {
	if t.eng.xlateOn.Load() {
		if to, ok := t.eng.lookupTransplant(m.To); ok {
			m.To = to
		}
	}
	t.Transport.Send(m)
}

// lookupTransplant resolves pid through the transplant map, chasing
// chains (the adopter itself died and its adoption was re-adopted).
func (e *Engine) lookupTransplant(pid ids.PID) (ids.PID, bool) {
	e.xmu.RLock()
	defer e.xmu.RUnlock()
	to, ok := e.transplants[pid]
	if !ok {
		return ids.NilPID, false
	}
	for range e.transplants { // bounded by map size; guards a mapping cycle
		next, more := e.transplants[to]
		if !more {
			break
		}
		to = next
	}
	return to, true
}

// maxTransplantParked bounds the frames parked while waiting for an
// adopter's announcement; beyond it the oldest parked frame is dropped
// (counted as a trace event) — the same fail-fast posture as the
// transport's own queue limits.
const maxTransplantParked = 1 << 14

// InstallTransplantMap records old→new incarnation mappings, learned
// either from a local adoption or from a peer's announcement frame.
// First mapping wins: a pair whose Old is already mapped is ignored,
// which (with disjoint ring slices under agreed views) fences duplicate
// deliveries of an announcement and conflicting adoptions — at most one
// transplant of a process ever takes effect here. Frames parked for a
// now-mapped corpse PID are forwarded. Returns how many pairs were newly
// installed.
func (e *Engine) InstallTransplantMap(pairs []TransplantPair) int {
	e.xmu.Lock()
	if e.transplants == nil {
		e.transplants = make(map[ids.PID]ids.PID, len(pairs))
	}
	installed := 0
	for _, pr := range pairs {
		if pr.Old == pr.New || pr.Old == ids.NilPID || pr.New == ids.NilPID {
			continue
		}
		if _, dup := e.transplants[pr.Old]; dup {
			continue
		}
		e.transplants[pr.Old] = pr.New
		installed++
	}
	var flush []*msg.Message
	if installed > 0 {
		keep := e.xparked[:0]
		for _, m := range e.xparked {
			if _, ok := e.transplants[m.To]; ok {
				flush = append(flush, m)
			} else {
				keep = append(keep, m)
			}
		}
		for i := len(keep); i < len(e.xparked); i++ {
			e.xparked[i] = nil
		}
		e.xparked = keep
	}
	e.xmu.Unlock()
	if installed > 0 {
		e.xlateOn.Store(true)
	}
	for _, m := range flush {
		e.machine.Net().Send(m) // the chokepoint rewrites m.To
	}
	return installed
}

// TransplantMap snapshots the installed mappings, sorted by Old — the
// payload for (re-)announcements to peers.
func (e *Engine) TransplantMap() []TransplantPair {
	e.xmu.RLock()
	out := make([]TransplantPair, 0, len(e.transplants))
	for old, reborn := range e.transplants {
		out = append(out, TransplantPair{Old: old, New: reborn})
	}
	e.xmu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Old < out[j].Old })
	return out
}

// RequeueTransplant accepts a frame the wire layer could not deliver
// because its destination node is dead. If a mapping for the dead
// incarnation is installed the frame is forwarded now (the chokepoint
// rewrites the destination); otherwise it is parked and flushed by the
// InstallTransplantMap call that makes it routable.
func (e *Engine) RequeueTransplant(m *msg.Message) {
	e.xmu.Lock()
	if _, ok := e.transplants[m.To]; !ok {
		if len(e.xparked) >= maxTransplantParked {
			drop := e.xparked[0]
			e.xparked = append(e.xparked[:0], e.xparked[1:]...)
			e.tracer.Emit(trace.Event{Kind: trace.Transport,
				Detail: fmt.Sprintf("transplant: parked-frame cap, dropping %s to %s", drop.Kind, drop.To)})
		}
		e.xparked = append(e.xparked, m)
		e.xmu.Unlock()
		return
	}
	e.xmu.Unlock()
	e.machine.Net().Send(m)
}

// Transplanted reports whether pid is a dead incarnation with an
// installed mapping — used by death handlers to skip auto-denying
// assumptions whose minting process was adopted rather than lost.
func (e *Engine) Transplanted(pid ids.PID) bool {
	_, ok := e.lookupTransplant(pid)
	return ok
}

// TransplantParked reports how many dead-node frames are parked awaiting
// an adopter's announcement.
func (e *Engine) TransplantParked() int {
	e.xmu.RLock()
	defer e.xmu.RUnlock()
	return len(e.xparked)
}

// AdoptProcesses transplants this node's ring slice of a dead node's
// user processes. procs is the corpse extraction (durable.ReadProcesses
// reshaped to core's Restored); own selects the slice (nil adopts all);
// body is the deterministic body to replay — the same function the
// corpse ran, by the determinism contract. For each adopted process the
// hand-off is made durable first (recTransplant plus a forced export of
// the full snapshot under the reborn PID), so a crash mid-transplant
// recovers the adoption instead of losing the process twice.
//
// Returns the installed pairs; the caller announces them to peers
// (EncodeTransplantAnnouncement → wire transplant frames) so everyone
// can forward traffic addressed to the dead incarnations.
func (e *Engine) AdoptProcesses(from int, procs map[ids.PID]*Restored, own func(ids.PID) bool, body Body) ([]TransplantPair, error) {
	olds := make([]ids.PID, 0, len(procs))
	for pid := range procs {
		olds = append(olds, pid)
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i] < olds[j] })

	var pairs []TransplantPair
	for _, old := range olds {
		r := procs[old]
		if r == nil || r.Terminated || len(r.Intervals) == 0 {
			continue
		}
		if own != nil && !own(old) {
			continue
		}
		if _, dup := e.lookupTransplant(old); dup {
			// The fence: someone (possibly us, recovering) already adopted
			// this process; a second incarnation must not spawn.
			continue
		}
		newPid := e.machine.AllocPID()
		r.Transplant = true
		if tr, ok := e.persist.(TransplantRecorder); ok {
			if err := tr.TransplantRecorded(from, old, newPid); err != nil {
				return pairs, fmt.Errorf("core: record transplant of %s: %w", old, err)
			}
		}
		if px, ok := e.persist.(ProcExporter); ok {
			if err := px.ProcExport(newPid, r); err != nil {
				return pairs, fmt.Errorf("core: export transplant of %s: %w", old, err)
			}
		}
		// Epochs issued here must clear everything the corpse ever issued
		// for this process, so stale corpse-era control messages stay
		// distinguishable from the reborn incarnation's intervals.
		maxE := r.MaxEpoch
		for _, ri := range r.Intervals {
			if ri.ID.Epoch > maxE {
				maxE = ri.ID.Epoch
			}
		}
		e.epochs.Skip(maxE)
		e.InstallTransplantMap([]TransplantPair{{Old: old, New: newPid}})
		if _, err := e.Transplant(newPid, body, r); err != nil {
			return pairs, fmt.Errorf("core: respawn transplant %s as %s: %w", old, newPid, err)
		}
		pairs = append(pairs, TransplantPair{Old: old, New: newPid})
		e.tracer.Emit(trace.Event{Kind: trace.Restart, PID: newPid,
			Detail: fmt.Sprintf("transplanted %s off dead node %d", old, from)})
	}
	return pairs, nil
}

// Transplant spawns body at a caller-chosen PID. With r non-nil (a fresh
// adoption) the process restores from r; with r nil the PID must already
// be mapped in the engine's Config.Restore — the path a restarted
// adopter takes when respawning transplants recorded in its own WAL
// (durable.Recovered.Transplants).
func (e *Engine) Transplant(pid ids.PID, body Body, r *Restored) (*Process, error) {
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return nil, ErrShutdown
	}
	if r != nil {
		if e.restore == nil {
			e.restore = make(map[ids.PID]*Restored)
		}
		e.restore[pid] = r
	}
	e.mu.Unlock()

	p := newProcess(e, body, nil)
	proc, err := e.machine.SpawnAt(pid, p.dispatch)
	if err != nil {
		return nil, fmt.Errorf("spawn transplant: %w", err)
	}
	p.bind(proc)

	e.mu.Lock()
	e.procs[p.PID()] = p
	e.mu.Unlock()

	e.runners.Add(1)
	go func() {
		defer e.runners.Done()
		p.run()
	}()
	return p, nil
}

// ReinjectCorpseTraffic re-sends traffic extracted from the corpse's
// WAL: out is its swallowed output (the pending resend plus outbound
// frames never acknowledged — re-sent at-least-once; receivers absorb
// the duplicates exactly as they absorb rollback-re-executed sends), and
// orphans are delivered-but-unconsumed inbox frames addressed to corpse
// processes, re-injected only for processes this node adopted. WAL
// identities are cleared first so the adopter's durable layer never
// retires a foreign (node, seq) pair that collides with its own inbox
// accounting. Returns how many messages were re-sent.
func (e *Engine) ReinjectCorpseTraffic(out, orphans []*msg.Message) int {
	n := 0
	for _, m := range out {
		if m == nil {
			continue
		}
		m.SrcNode, m.SrcSeq = 0, 0
		e.machine.Net().Send(m)
		n++
	}
	for _, m := range orphans {
		if m == nil {
			continue
		}
		if _, ok := e.lookupTransplant(m.To); !ok {
			continue
		}
		m.SrcNode, m.SrcSeq = 0, 0
		e.machine.Net().Send(m)
		n++
	}
	return n
}

// EncodeTransplantAnnouncement renders pairs for the wire's transplant
// side-channel: a count uvarint, then (old, new) uvarint pairs.
func EncodeTransplantAnnouncement(pairs []TransplantPair) []byte {
	b := binary.AppendUvarint(nil, uint64(len(pairs)))
	for _, p := range pairs {
		b = binary.AppendUvarint(b, uint64(p.Old))
		b = binary.AppendUvarint(b, uint64(p.New))
	}
	return b
}

// DecodeTransplantAnnouncement parses an announcement payload.
func DecodeTransplantAnnouncement(b []byte) ([]TransplantPair, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("core: transplant announcement: bad count")
	}
	b = b[n:]
	if count > uint64(len(b)) { // every pair needs ≥2 bytes
		return nil, fmt.Errorf("core: transplant announcement: count %d exceeds payload", count)
	}
	pairs := make([]TransplantPair, 0, count)
	for i := uint64(0); i < count; i++ {
		old, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("core: transplant announcement: bad old pid")
		}
		b = b[n:]
		reborn, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("core: transplant announcement: bad new pid")
		}
		b = b[n:]
		pairs = append(pairs, TransplantPair{Old: ids.PID(old), New: ids.PID(reborn)})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("core: transplant announcement: %d trailing bytes", len(b))
	}
	return pairs, nil
}

// maybeExportLocked writes a per-process export-index record every
// exportEvery journal appends. A cadence export is an optimization (the
// WAL tail still folds correctly without it), so a failure is traced and
// skipped rather than poisoning the process.
func (p *Process) maybeExportLocked(per Persister) {
	px, ok := per.(ProcExporter)
	if !ok {
		return
	}
	p.sinceExport++
	if p.sinceExport < exportEvery {
		return
	}
	p.sinceExport = 0
	if err := px.ProcExport(p.proc.PID(), p.restoredSnapshotLocked()); err != nil {
		p.eng.tracer.Emit(trace.Event{Kind: trace.Transport, PID: p.proc.PID(),
			Detail: fmt.Sprintf("proc export skipped: %v", err)})
	}
}

// restoredSnapshotLocked flattens the process's live replay state into
// the Restored shape the export-index record carries. Caller holds p.mu.
// MaxEpoch understates epochs of intervals already rolled back, which is
// safe: the durable fold merges maxima from the records the export
// replaces, and the adoption path re-maximizes over what it reads.
func (p *Process) restoredSnapshotLocked() *Restored {
	r := &Restored{
		NextSeq:    p.seq,
		Base:       p.base,
		HasBase:    p.hasBase,
		Terminated: p.term,
	}
	for _, rec := range p.history.Slice() {
		if rec.ID.Epoch > r.MaxEpoch {
			r.MaxEpoch = rec.ID.Epoch
		}
		r.Intervals = append(r.Intervals, RestoredInterval{
			ID:           rec.ID,
			Kind:         rec.Kind,
			JournalIndex: rec.JournalIndex,
			GuessAID:     rec.GuessAID,
			Definite:     rec.Definite,
			IDO:          rec.IDO.Slice(),
			UDO:          rec.UDO.Slice(),
			Cut:          rec.Cut.Slice(),
			IHA:          rec.IHA.Slice(),
			IHD:          rec.IHD.Slice(),
		})
	}
	r.Entries = make([]*journal.Entry, p.jnl.Len())
	for i := range r.Entries {
		r.Entries[i] = p.jnl.At(i)
	}
	r.Dead = p.dead.Slice()
	return r
}
