package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/interval"
	"github.com/hope-dist/hope/internal/journal"
	"github.com/hope-dist/hope/internal/mailbox"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/sets"
	"github.com/hope-dist/hope/internal/trace"
	"github.com/hope-dist/hope/internal/vpm"
)

// rollbackPanic unwinds a body goroutine for re-execution after rollback.
type rollbackPanic struct{}

// terminatePanic unwinds a body goroutine for good (root rollback or
// engine shutdown).
type terminatePanic struct{}

var (
	errRolledBack    = errors.New("core: rolled back")
	errTerminatedSig = errors.New("core: terminate signal")
)

// Process is one HOPE user process: a deterministic body plus the HOPElib
// state attached to it (interval history, dependency sets, journal).
type Process struct {
	eng      *Engine
	body     Body
	birthIDO []ids.AID

	proc *vpm.Proc // set by bind before any goroutine starts

	mu       sync.Mutex
	history  *interval.History
	jnl      *journal.Journal
	seq      uint32
	dataQ    *mailbox.Box
	dead     *sets.AIDSet // assumptions known to be denied
	curIdx   int          // history position of the current interval
	pending  bool         // rollback performed, body must re-execute
	term     bool         // terminated: never runs again
	complete bool         // body returned (may still be speculative)
	runErr   error
	restarts int
	recving  bool // body parked inside Recv

	// sinceExport counts journal appends since the last per-process
	// export-index record (see transplant.go); foreign WAL readers use
	// those records to extract this process without a full-log fold.
	sinceExport int

	// base is the latest compaction snapshot (see compact.go): the
	// state a re-execution resumes from instead of replaying the
	// process's whole life.
	base    any
	hasBase bool

	// externs holds outputs registered through Ctx.Externalize and not
	// yet released by the stability watermark; externsDone remembers the
	// call sites already released so a replay does not re-register them
	// (see stability.go). Both stay nil with the watermark off.
	externs     []externRec
	externsDone map[externKey]struct{}

	restartCh chan struct{}
	stopCh    chan struct{}
	stopOnce  sync.Once
	ready     chan struct{} // closed once bind has installed proc + root
}

func newProcess(eng *Engine, body Body, birthIDO []ids.AID) *Process {
	return &Process{
		eng:       eng,
		body:      body,
		birthIDO:  birthIDO,
		history:   interval.NewHistory(),
		jnl:       &journal.Journal{},
		dataQ:     mailbox.New(),
		dead:      sets.NewAIDSet(),
		restartCh: make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		ready:     make(chan struct{}),
	}
}

// bind attaches the vpm identity and creates the root interval. A process
// spawned by a speculative parent inherits the parent's IDO as its root
// dependency set: it is a causal descendant of those assumptions. When the
// engine holds recovered pre-crash state for this PID, the process is
// rebuilt from it instead (see restore.go).
func (p *Process) bind(proc *vpm.Proc) {
	p.proc = proc
	r := p.eng.takeRestored(proc.PID())
	p.mu.Lock()
	if r != nil && len(r.Intervals) > 0 {
		p.restoreLocked(r)
	} else {
		root := p.newIntervalLocked(interval.Root, 0, p.birthIDO, ids.NilAID)
		p.curIdx = p.history.Position(root.ID)
	}
	p.mu.Unlock()
	close(p.ready)
}

// PID returns the process identifier.
func (p *Process) PID() ids.PID { return p.proc.PID() }

// newIntervalLocked appends a fresh interval whose IDO is the predecessor
// interval's live IDO plus extra, registers it with every AID it depends
// on (a Guess message each; the paper's DOM bookkeeping), and returns it.
// An interval born with an empty IDO is definite from the start.
func (p *Process) newIntervalLocked(kind interval.OpenKind, journalIndex int, extra []ids.AID, guessAID ids.AID) *interval.Record {
	id := ids.IntervalID{Proc: p.proc.PID(), Seq: p.seq, Epoch: p.eng.epochs.Next()}
	p.seq++
	rec := interval.NewRecord(id, kind, journalIndex)
	rec.GuessAID = guessAID
	if pred := p.history.Last(); pred != nil {
		rec.IDO = pred.IDO.Clone()
		// Unconfirmed cycle cuts are still live dependencies from the
		// successor's point of view: its speculation rests on them until
		// they are confirmed or revived (DESIGN.md §4).
		for _, a := range pred.Cut.Slice() {
			rec.IDO.Add(a)
		}
	}
	for _, a := range extra {
		rec.IDO.Add(a)
	}
	if rec.IDO.Empty() {
		rec.Definite = true
	}
	p.history.Append(rec)
	if st := p.eng.stability; st != nil {
		if rec.Definite {
			st.Issued(id.Epoch)
		} else {
			st.Opened(id.Epoch)
		}
	}
	p.persistIntervalOpen(rec)
	for _, a := range rec.IDO.Slice() {
		p.send(msg.Guess(p.proc.PID(), rec.ID, a))
	}
	return rec
}

// send transmits m asynchronously, stamping the sender PID. With
// ownership routing on, AID-bound adjudications are re-addressed to the
// ring owner's router first (see route.go).
func (p *Process) send(m *msg.Message) {
	if rt := p.eng.router; rt != nil && rt.redirect(m) {
		return
	}
	p.proc.Send(m)
}

// dispatch is the vpm body: the HOPElib message loop intercepting control
// messages (paper Figure 3) and routing user data to the Recv queue.
func (p *Process) dispatch(proc *vpm.Proc) {
	<-p.ready // wait for bind: proc handle and root interval installed
	for {
		m, err := proc.Recv()
		if err != nil {
			return // mailbox closed: engine shutdown
		}
		switch m.Kind {
		case msg.KindData:
			p.handleData(m)
		case msg.KindReplace:
			p.handleReplace(m)
			p.persistConsumed(m)
		case msg.KindRollback:
			p.handleRollback(m)
			p.persistConsumed(m)
		case msg.KindRevive:
			p.handleRevive(m)
			p.persistConsumed(m)
		case msg.KindCutAck:
			p.handleCutAck(m)
			p.persistConsumed(m)
		default:
			p.eng.tracer.Emit(trace.Event{
				Kind: trace.Violation, PID: proc.PID(),
				Detail: "user process received " + m.Kind.String(),
			})
			p.persistConsumed(m)
		}
	}
}

// handleData enqueues a user message unless the process is terminated or
// the message's tag names an assumption already known to be denied (such
// a message is causally invalid and its sender has been rolled back).
func (p *Process) handleData(m *msg.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.term {
		p.persistConsumed(m)
		return
	}
	if p.dead.Intersects(m.Tag) || p.eng.archiveInvalidates(m.Tag) {
		p.eng.tracer.Emit(trace.Event{
			Kind: trace.Info, PID: p.proc.PID(),
			Detail: fmt.Sprintf("dropped data message from %s with denied tag %v payload=%v", m.From, m.Tag, m.Payload),
		})
		p.persistConsumed(m)
		return
	}
	p.dataQ.Put(m)
}

// handleReplace applies a Replace message to the target interval (paper
// Figure 10 / Figure 15 depending on the configured algorithm).
func (p *Process) handleReplace(m *msg.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := p.history.Get(m.IID)
	if rec == nil || rec.Definite || p.term {
		return // stale target: the paper's "if target in history" guard
	}
	res := interval.ApplyReplace(p.eng.alg, rec, m.AID, m.IDO)
	p.persistIntervalState(rec)
	for _, y := range res.NewDeps {
		// Complete the DOM addition: register this interval with every
		// AID that replaced the sender (Figure 10). A dependency whose
		// verdict is already known locally is answered in place — the
		// network Guess could only echo back what the dead set or the
		// archive already says, and each such round trip re-registers
		// this process with y's machine. Under routed adjudication that
		// echo is what turns one denial into a storm: every rollback's
		// re-execution re-emits the Replace, re-guesses the dead
		// dependency, and grows the machine's DOM without bound.
		if p.dead.Contains(y) {
			p.rollbackLocked(rec)
			return
		}
		if verdict, ok := p.eng.Archived(y); ok {
			if !verdict {
				p.dead.Add(y)
				p.persistDeadAID(y)
				p.rollbackLocked(rec)
				return
			}
			// The machine's answer to a guess of an affirmed-and-collected
			// AID is Replace(y→nil); apply it directly. A nil replacement
			// set introduces no deps or cuts.
			interval.ApplyReplace(p.eng.alg, rec, y, nil)
			p.persistIntervalState(rec)
			continue
		}
		p.send(msg.Guess(p.proc.PID(), rec.ID, y))
	}
	for _, y := range res.NewCuts {
		// A provisional cycle cut: ask the cut AID to confirm it is
		// still conditionally affirmed (DESIGN.md §4).
		p.eng.tracer.Emit(trace.Event{
			Kind: trace.Info, PID: p.proc.PID(), Interval: rec.ID, AID: y,
			Detail: "cycle cut pending confirmation",
		})
		p.send(msg.CutProbe(p.proc.PID(), rec.ID, y))
	}
	if rec.Finalizable() {
		p.finalizeLocked(rec)
	}
}

// handleCutAck retires a confirmed cycle cut; the interval finalizes if
// nothing else holds it.
func (p *Process) handleCutAck(m *msg.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.term {
		return
	}
	rec := p.history.Get(m.IID)
	if rec == nil || rec.Definite {
		return
	}
	rec.Cut.Remove(m.AID)
	p.persistIntervalState(rec)
	if rec.Finalizable() {
		p.finalizeLocked(rec)
	}
}

// finalizeLocked makes rec definite (paper Figure 11): its speculative
// affirms become unconditional and its buffered denies fire.
func (p *Process) finalizeLocked(rec *interval.Record) {
	rec.Definite = true
	if st := p.eng.stability; st != nil {
		st.Settled(rec.ID.Epoch)
	}
	p.persistFinalize(rec.ID)
	p.eng.tracer.Emit(trace.Event{
		Kind: trace.Finalize, PID: p.proc.PID(), Interval: rec.ID,
	})
	for _, y := range rec.IHA.Slice() {
		p.send(msg.Affirm(p.proc.PID(), rec.ID, y, nil))
	}
	for _, y := range rec.IHD.Slice() {
		p.send(msg.Deny(p.proc.PID(), rec.ID, y))
	}
}

// handleRevive re-establishes a direct dependency on an AID whose
// conditional affirm was retracted: whatever resolution of it the target
// interval performed — Replace substitution or a stale-UDO discard — came
// through the voided chain. A definite target is the narrow premature
// commit race this mechanism cannot repair; it is traced for visibility
// (see DESIGN.md §4).
func (p *Process) handleRevive(m *msg.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.term {
		return
	}
	rec := p.history.Get(m.IID)
	if rec == nil {
		return // stale target
	}
	if rec.Definite {
		// With the stability watermark on, a definite interval is
		// revocable until the frontier covers it: the premature commit the
		// retracted chain exposes is repaired by un-finalizing — rolling
		// the interval back so re-execution re-resolves the revived
		// dependency. A covered interval can no longer be wrong here (the
		// cut drained every in-flight retract), so reaching one is a
		// genuine violation, as is any definite target with the watermark
		// off (DESIGN.md §4.9, §12).
		if st := p.eng.stability; st != nil && !st.Covered(rec.ID.Epoch) {
			p.eng.tracer.Emit(trace.Event{
				Kind: trace.Info, PID: p.proc.PID(), Interval: rec.ID, AID: m.AID,
				Detail: "revoking uncovered definite interval (revive through a retracted chain)",
			})
			p.rollbackLocked(rec)
			return
		}
		p.eng.tracer.Emit(trace.Event{
			Kind: trace.Violation, PID: p.proc.PID(), Interval: rec.ID, AID: m.AID,
			Detail: "revive of definite interval: premature commit through a retracted chain",
		})
		return
	}
	rec.UDO.Remove(m.AID)
	rec.Cut.Remove(m.AID)
	added := rec.IDO.Add(m.AID)
	p.persistIntervalState(rec)
	if added {
		p.send(msg.Guess(p.proc.PID(), rec.ID, m.AID))
		// The interval's speculative basis grew. Conditional affirms it
		// issued earlier advertised the old, smaller basis; refresh them
		// so dependents that replaced those assumptions acquire the new
		// dependency too (one hop of the commit-basis-growth propagation;
		// see DESIGN.md §4).
		if !rec.IHA.Empty() {
			basis := rec.IDO.Slice()
			for _, y := range rec.IHA.Slice() {
				p.send(msg.Affirm(p.proc.PID(), rec.ID, y, basis))
			}
		}
	}
}

// handleRollback rolls back the target interval and everything after it.
func (p *Process) handleRollback(m *msg.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.term {
		return
	}
	// Record the verdict before the stale-target guard: every Rollback
	// sender has the AID in state False, so the denial is true regardless
	// of whether the target interval still exists. Dropping it when the
	// interval was already rolled back deeper would let the re-executed
	// interval guess the same dead AID again (fresh epoch, so nothing
	// deduplicates it) and chase its own rollbacks indefinitely.
	if m.AID.Valid() {
		p.dead.Add(m.AID)
		p.persistDeadAID(m.AID)
	}
	rec := p.history.Get(m.IID)
	if rec == nil {
		// Stale target: the interval was already rolled back deeper. The
		// denial behind this message still stands, so reach through to
		// the earliest surviving interval that depends on the denied
		// AID — a machine fans out its deny exactly once per registered
		// interval, so a fan-out that races with a deeper rollback would
		// otherwise be lost for good and leave that dependent stuck
		// speculative (nothing ever re-sends it).
		if m.AID.Valid() {
			if iid, ok := p.earliestDependentOnLocked(m.AID); ok {
				if dep := p.history.Get(iid); dep != nil {
					p.rollbackLocked(dep)
				}
			}
		}
		return
	}
	if rec.Definite {
		// Revocable-commit mode: an uncovered definite interval is
		// un-finalized and rolled back like a speculative one — this is
		// the §4.9 repair path. Covered intervals are irrevocable.
		if st := p.eng.stability; st != nil && !st.Covered(rec.ID.Epoch) {
			p.eng.tracer.Emit(trace.Event{
				Kind: trace.Info, PID: p.proc.PID(), Interval: rec.ID, AID: m.AID,
				Detail: "revoking uncovered definite interval (rollback from denied dependency)",
			})
			p.rollbackLocked(rec)
			return
		}
		p.eng.tracer.Emit(trace.Event{
			Kind: trace.Violation, PID: p.proc.PID(), Interval: rec.ID, AID: m.AID,
			Detail: "rollback of definite interval (conflicting affirm/deny upstream)",
		})
		return
	}
	p.rollbackLocked(rec)
}

// rollbackLocked implements the paper's rollback (Figure 11) on top of
// journal truncation:
//
//   - every discarded interval's speculative affirms are retracted;
//   - the journal is cut just before the entry that opened the target
//     interval, so re-execution re-runs the opening primitive live: the
//     interval returns to "Begin" in Figure 9's state machine. A re-run
//     guess of a *denied* AID returns false (the dead-AID set); a re-run
//     guess whose interval was only rolled back transitively — some
//     other assumption it had come to depend on was denied — guesses
//     afresh, as the paper's interval state machine requires;
//   - received messages from the discarded suffix that remain causally
//     valid (no denied AID in their tag) are requeued in their original
//     order; assumptions created in the suffix are orphaned and their
//     AID processes killed;
//   - the body goroutine is signalled to unwind and re-execute.
//
// Rollback of a speculative root terminates the process.
func (p *Process) rollbackLocked(rec *interval.Record) {
	if rec.Kind == interval.Root {
		p.eng.tracer.Emit(trace.Event{
			Kind: trace.Terminate, PID: p.proc.PID(), Interval: rec.ID,
		})
		if p.runErr == nil {
			// Even a body that already returned is retroactively undone:
			// its entire existence was speculation that failed.
			p.runErr = ErrTerminated
		}
		p.persistRollback(rec.ID)
		p.terminateLocked()
		return
	}

	pos := p.history.Position(rec.ID)
	removed := p.history.TruncateFrom(pos)
	for i := len(removed) - 1; i >= 0; i-- {
		r := removed[i]
		if st := p.eng.stability; st != nil {
			// A definite record here was already settled at finalize; its
			// revocation is an event but not a second settle. Speculative
			// records settle now, by being discarded.
			if r.Definite {
				st.Revoked(r.ID.Epoch)
			} else {
				st.Settled(r.ID.Epoch)
			}
		}
		for _, y := range r.IHA.Slice() {
			p.send(msg.Retract(p.proc.PID(), r.ID, y))
		}
	}

	discarded := p.jnl.Truncate(rec.JournalIndex)
	p.dropExternsLocked(rec.JournalIndex)
	p.persistRollback(rec.ID)

	// Requeue surviving receives and deny assumptions created in the
	// discarded suffix. A message whose tag names a denied assumption is
	// causally invalid — its sender has been rolled back — and is gone
	// for good; everything else is re-delivered in original order.
	//
	// Orphaned assumptions are denied rather than garbage collected:
	// other processes may have come to depend on them (directly through
	// tags or indirectly through Replace chains), and the only way to
	// release every such dependent is the denial's rollback fan-out. The
	// re-execution draws fresh identifiers, so nothing ever affirms an
	// orphan.
	var requeue []*msg.Message
	for _, e := range discarded {
		switch e.Kind {
		case journal.KindRecv, journal.KindTryRecv:
			if e.Msg == nil {
				continue // a TryRecv miss
			}
			if p.dead.Intersects(e.Msg.Tag) {
				p.eng.tracer.Emit(trace.Event{
					Kind: trace.Info, PID: p.proc.PID(),
					Detail: fmt.Sprintf("requeue-dropped message from %s with denied tag %v payload=%v", e.Msg.From, e.Msg.Tag, e.Msg.Payload),
				})
				p.persistConsumed(e.Msg)
				continue
			}
			requeue = append(requeue, e.Msg)
		case journal.KindAidInit:
			p.dead.Add(e.AID)
			p.persistDeadAID(e.AID)
			p.send(msg.Deny(p.proc.PID(), rec.ID, e.AID))
		}
	}

	p.curIdx = p.history.Len() - 1

	// Purge queued-but-unreceived messages that are now known invalid,
	// then put surviving journalled messages back at the front so they
	// are re-received in their original order.
	p.dataQ.Purge(func(m *msg.Message) bool {
		if p.dead.Intersects(m.Tag) {
			p.persistConsumed(m)
			return true
		}
		return false
	})
	p.dataQ.Requeue(requeue)

	p.pending = true
	p.restarts++
	p.eng.tracer.Emit(trace.Event{
		Kind: trace.Rollback, PID: p.proc.PID(), Interval: rec.ID,
		Detail: fmt.Sprintf("history=%d journal=%d requeued=%d", p.history.Len(), p.jnl.Len(), len(requeue)),
	})
	p.dataQ.Interrupt()
	select {
	case p.restartCh <- struct{}{}:
	default:
	}
}

// terminateLocked marks the process dead and wakes its body.
func (p *Process) terminateLocked() {
	if !p.term {
		// Settle whatever speculation the dead process leaves behind so
		// the stability watermark does not wait forever on a corpse, and
		// drop its gated outputs — a terminated process's existence was
		// failed speculation.
		if st := p.eng.stability; st != nil {
			for _, r := range p.history.Slice() {
				if !r.Definite {
					st.Settled(r.ID.Epoch)
				}
			}
		}
		p.externs = nil
	}
	p.term = true
	p.dataQ.Interrupt()
	p.stopOnce.Do(func() { close(p.stopCh) })
}

// shutdown is called by the engine: terminate and unblock the runner.
func (p *Process) shutdown() {
	p.mu.Lock()
	p.terminateLocked()
	p.mu.Unlock()
}

// run is the runner loop: execute the body, restart on rollback, park on
// completion until a further rollback or termination.
func (p *Process) run() {
	for {
		p.mu.Lock()
		if p.term {
			if p.runErr == nil {
				p.runErr = ErrTerminated
			}
			p.mu.Unlock()
			return
		}
		p.pending = false
		p.complete = false
		// Drain any stale restart token from a rollback already covered
		// by this re-execution.
		select {
		case <-p.restartCh:
		default:
		}
		p.mu.Unlock()

		err := p.execute()
		switch {
		case errors.Is(err, errRolledBack):
			p.eng.tracer.Emit(trace.Event{Kind: trace.Restart, PID: p.proc.PID()})
			continue
		case errors.Is(err, errTerminatedSig):
			p.mu.Lock()
			if p.runErr == nil {
				p.runErr = ErrTerminated
			}
			p.mu.Unlock()
			return
		}

		p.mu.Lock()
		p.complete = true
		p.runErr = err
		p.mu.Unlock()

		select {
		case <-p.restartCh:
			p.eng.tracer.Emit(trace.Event{Kind: trace.Restart, PID: p.proc.PID()})
			continue
		case <-p.stopCh:
			return
		}
	}
}

// execute runs the body once, translating unwinding panics into errors.
func (p *Process) execute() (err error) {
	defer func() {
		r := recover()
		switch r := r.(type) {
		case nil:
		case rollbackPanic:
			err = errRolledBack
		case terminatePanic:
			err = errTerminatedSig
		case *journal.DivergenceError:
			err = r
		default:
			err = fmt.Errorf("core: process body panic: %v\n%s", r, debug.Stack())
		}
	}()
	ctx := &Ctx{p: p}
	return p.body(ctx)
}

// parked reports whether the process is currently at rest: terminated,
// completed, or blocked in Recv with nothing queued.
func (p *Process) parked() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.term {
		return true
	}
	if p.pending {
		return false
	}
	if p.proc.Box().Len() > 0 {
		return false
	}
	if p.complete {
		return true
	}
	return p.recving && p.dataQ.Len() == 0
}

// Status is a consistent snapshot of a process's externally observable
// state, used by tests and the experiment harness.
type Status struct {
	PID         ids.PID
	Completed   bool
	Terminated  bool
	Err         error
	Restarts    int
	Intervals   int
	AllDefinite bool
	DeadAIDs    []ids.AID
}

// Snapshot returns the process status under the process lock.
func (p *Process) Snapshot() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Status{
		PID:         p.proc.PID(),
		Completed:   p.complete,
		Terminated:  p.term,
		Err:         p.runErr,
		Restarts:    p.restarts,
		Intervals:   p.history.Len(),
		AllDefinite: p.history.AllDefinite(),
		DeadAIDs:    p.dead.Slice(),
	}
}

// JournalLen returns the current length of the replay journal (tests and
// capacity monitoring).
func (p *Process) JournalLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jnl.Len()
}

// HistorySnapshot returns a copy of the interval records' identifiers,
// kinds, and definiteness, oldest first.
func (p *Process) HistorySnapshot() []IntervalInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]IntervalInfo, 0, p.history.Len())
	for _, r := range p.history.Slice() {
		out = append(out, IntervalInfo{
			ID:       r.ID,
			Kind:     r.Kind,
			GuessAID: r.GuessAID,
			Definite: r.Definite,
			IDO:      r.IDO.Slice(),
			UDO:      r.UDO.Slice(),
			Cut:      r.Cut.Slice(),
		})
	}
	return out
}

// IntervalInfo describes one interval in a history snapshot.
type IntervalInfo struct {
	ID       ids.IntervalID
	Kind     interval.OpenKind
	GuessAID ids.AID
	Definite bool
	IDO      []ids.AID
	UDO      []ids.AID
	Cut      []ids.AID // unconfirmed cycle cuts: live dependencies too
}
