// Package stream generalizes the paper's call-streaming transformation
// (Bacon & Strom [1], realized with HOPE in §3.1) to pipelines of
// dependent RPCs: call i+1's argument is call i's result. Synchronously
// the chain costs depth × RTT; optimistically every call is issued
// immediately against the predicted result of its predecessor, collapsing
// the critical path to roughly one RTT when predictions hold.
package stream

import (
	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/rpc"
)

// StepMethod is the server method pipelines call.
const StepMethod = "step"

// StepFn computes one pipeline stage's true result.
type StepFn func(arg int) int

// Server returns a stateless pipeline server applying step.
func Server(step StepFn) core.Body {
	return rpc.Server(map[string]rpc.Handler{
		StepMethod: func(state, arg int) (int, int) {
			return state, step(arg)
		},
	}, 0)
}

// Chain describes a pipeline run.
type Chain struct {
	// Server is the remote stage executor.
	Server ids.PID
	// Depth is the number of dependent calls.
	Depth int
	// Step mirrors the server's step function; the client predicts each
	// stage's result with it.
	Step StepFn
	// Mispredict marks stages whose prediction should be deliberately
	// wrong (the accuracy knob in the experiments). May be nil.
	Mispredict func(stage int) bool
}

// prediction returns the client's guess for a stage result.
func (c Chain) prediction(stage, arg int) int {
	v := c.Step(arg)
	if c.Mispredict != nil && c.Mispredict(stage) {
		return v + 1 // deliberately wrong, detectably so
	}
	return v
}

// RunPessimistic executes the chain with synchronous calls.
func (c Chain) RunPessimistic(ctx *core.Ctx, seed int) (int, error) {
	v := seed
	for i := 0; i < c.Depth; i++ {
		r, err := rpc.Call(ctx, c.Server, StepMethod, v, i)
		if err != nil {
			return 0, err
		}
		v = r
	}
	return v, nil
}

// RunOptimistic executes the chain with call streaming: each stage
// returns its predicted result immediately and verification proceeds in
// parallel. A misprediction at stage i rolls the client back to stage i;
// the re-execution continues from the actual result.
func (c Chain) RunOptimistic(ctx *core.Ctx, seed int) (int, error) {
	v := seed
	for i := 0; i < c.Depth; i++ {
		stage := i
		r, err := rpc.CallOptimistic(ctx, c.Server, StepMethod, v, i,
			func(_ string, arg int) int { return c.prediction(stage, arg) })
		if err != nil {
			return 0, err
		}
		v = r
	}
	return v, nil
}

// Expected computes the true chain result without any messaging.
func (c Chain) Expected(seed int) int {
	v := seed
	for i := 0; i < c.Depth; i++ {
		v = c.Step(v)
	}
	return v
}
