package stream

import (
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/netsim"
)

const settleTimeout = 20 * time.Second

type resultCell struct {
	mu sync.Mutex
	v  *int
}

func (r *resultCell) set(v int) {
	r.mu.Lock()
	r.v = &v
	r.mu.Unlock()
}

func (r *resultCell) get() (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.v == nil {
		return 0, false
	}
	return *r.v, true
}

func runChain(t *testing.T, depth int, mispredict func(int) bool, optimistic bool, latency time.Duration) (int, core.Status, time.Duration) {
	t.Helper()
	eng := core.NewEngine(core.Config{Transport: netsim.New(netsim.Constant(latency))})
	t.Cleanup(eng.Shutdown)

	step := func(v int) int { return v*3 + 1 }
	server, err := eng.SpawnRoot(Server(step))
	if err != nil {
		t.Fatalf("spawn server: %v", err)
	}
	chain := Chain{Server: server.PID(), Depth: depth, Step: step, Mispredict: mispredict}

	var cell resultCell
	start := time.Now()
	client, err := eng.SpawnRoot(func(ctx *core.Ctx) error {
		run := chain.RunPessimistic
		if optimistic {
			run = chain.RunOptimistic
		}
		v, err := run(ctx, 1)
		if err != nil {
			return err
		}
		cell.set(v)
		return nil
	})
	if err != nil {
		t.Fatalf("spawn client: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	elapsed := time.Since(start)
	v, ok := cell.get()
	if !ok {
		t.Fatal("client never finished")
	}
	return v, client.Snapshot(), elapsed
}

func TestChainAllCorrect(t *testing.T) {
	depth := 6
	step := func(v int) int { return v*3 + 1 }
	chain := Chain{Depth: depth, Step: step}
	want := chain.Expected(1)

	v, st, _ := runChain(t, depth, nil, true, 100*time.Microsecond)
	if v != want {
		t.Fatalf("result = %d, want %d", v, want)
	}
	if st.Restarts != 0 {
		t.Fatalf("client rolled back %d times with perfect predictions", st.Restarts)
	}
	if !st.AllDefinite {
		t.Fatalf("client not definite: %+v", st)
	}
}

func TestChainWithMispredictions(t *testing.T) {
	depth := 6
	step := func(v int) int { return v*3 + 1 }
	chain := Chain{Depth: depth, Step: step}
	want := chain.Expected(1)

	miss := func(stage int) bool { return stage == 2 || stage == 4 }
	v, st, _ := runChain(t, depth, miss, true, 100*time.Microsecond)
	if v != want {
		t.Fatalf("result = %d, want %d (mispredictions must not corrupt the result)", v, want)
	}
	if st.Restarts == 0 {
		t.Fatal("client never rolled back despite mispredictions")
	}
	if !st.AllDefinite {
		t.Fatalf("client not definite: %+v", st)
	}
}

func TestChainMatchesPessimistic(t *testing.T) {
	depth := 5
	vOpt, _, _ := runChain(t, depth, nil, true, 50*time.Microsecond)
	vPess, _, _ := runChain(t, depth, nil, false, 50*time.Microsecond)
	if vOpt != vPess {
		t.Fatalf("optimistic=%d pessimistic=%d", vOpt, vPess)
	}
}
