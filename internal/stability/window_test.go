package stability_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/netsim"
	"github.com/hope-dist/hope/internal/oracle"
	"github.com/hope-dist/hope/internal/stability"
	"github.com/hope-dist/hope/internal/transport"
)

// TestPrematureCommitWindow pins the §4.9 premature-commit window and its
// closure by the watermark, by constructing the mutual-support ring the
// paper warns about and then pulling its foundation away:
//
//   - node 0 hosts two assumptions, y and bp, plus a sink process;
//   - E (node 1) guesses y and conditionally affirms bp (basis {y});
//   - Q (node 3) guesses bp; the machine buck-passes, so Q's interval Iq1
//     ends up depending on {y} with bp in its UDO set;
//   - F (node 2) guesses bp and conditionally affirms y (basis {bp}).
//
// F's affirm makes machine y speculative on {bp} and fans out
// Replace(y → ·, {bp}). The test's gated transport holds exactly the two
// fan-out frames that would expose the ring to E and F — modelling the
// §4.9 race where those frames are still in flight — so the only replace
// that lands is the one at Iq1, where bp re-entering the dependency set
// from UDO triggers a cycle cut and Iq1 *finalizes locally*. Its entire
// support is the y↔bp conditional ring; no definite affirm exists.
//
// Then node 0 is presumed dead. E and F auto-deny their orphans, re-run,
// and issue real denials: both machines go False, the verdict is
// y=false, bp=false — and Q retained guess(bp)=true in a definite,
// externalized interval. With the watermark off that is exactly the
// divergence: a rollback-of-definite violation, an oracle outcome
// mismatch, and a premature output that already escaped. With the
// watermark on, the same schedule is repaired: the finalize was
// revocable (never covered by any frontier), the liveness sweep's
// reach-through finds bp behind the definite interval, the rollback
// un-finalizes Iq1, Q re-runs to the correct outcome, and the gated
// output is released exactly once — after coverage, with the right
// value.
func TestPrematureCommitWindow(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, on := range []bool{false, true} {
			mode := "off"
			if on {
				mode = "on"
			}
			t.Run(fmt.Sprintf("watermark=%s/seed=%d", mode, seed), func(t *testing.T) {
				runWindow(t, on, seed)
			})
		}
	}
}

// gate holds frames matching installed rules, simulating in-flight
// messages that have not yet been delivered.
type gate struct {
	mu    sync.Mutex
	rules []func(*msg.Message) bool
	held  int
}

func (g *gate) hold(rule func(*msg.Message) bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rules = append(g.rules, rule)
}

func (g *gate) intercept(m *msg.Message) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.rules {
		if r(m) {
			g.held++
			return true
		}
	}
	return false
}

// gatedNet gives one engine a private view of the shared simulated net
// with the gate interposed on sends. Close is a no-op: four engines share
// one net and each Shutdown closes its transport; the test closes the
// real net once, after all engines are down.
type gatedNet struct {
	transport.Transport
	g *gate
}

func (t *gatedNet) Send(m *msg.Message) {
	if t.g.intercept(m) {
		return
	}
	t.Transport.Send(m)
}

func (t *gatedNet) Close() {}

const windowPIDBits = 20 // PID space per simulated node

func windowNode(pid ids.PID) int { return int(pid >> windowPIDBits) }

func findGuess(h []core.IntervalInfo, a ids.AID) (core.IntervalInfo, bool) {
	for _, ii := range h {
		if ii.GuessAID == a {
			return ii, true
		}
	}
	return core.IntervalInfo{}, false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func runWindow(t *testing.T, watermark bool, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	jitter := func() { time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond) }

	// Background load: two CPU hogs keep the scheduler busy so goroutine
	// interleavings vary across runs and -count repetitions.
	stopHogs := make(chan struct{})
	var hogs sync.WaitGroup
	for i := 0; i < 2; i++ {
		hogs.Add(1)
		go func() {
			defer hogs.Done()
			x := uint64(seed) + 1
			for {
				select {
				case <-stopHogs:
					return
				default:
					for j := 0; j < 1024; j++ {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
					}
				}
			}
		}()
	}
	defer func() { close(stopHogs); hogs.Wait() }()

	net := netsim.New(netsim.Constant(150 * time.Microsecond))
	defer net.Close()
	g := &gate{}

	trackers := make(map[int]*stability.Tracker)
	mk := func(node int) *core.Engine {
		cfg := core.Config{
			Transport: &gatedNet{Transport: net, g: g},
			PIDBase:   ids.PID(node) << windowPIDBits,
		}
		if watermark {
			tr := stability.NewTracker(node)
			trackers[node] = tr
			cfg.Stability = tr
		}
		return core.NewEngine(cfg)
	}
	engH := mk(0) // hosts the assumptions and the sink
	engE := mk(1)
	engF := mk(2)
	engQ := mk(3)
	engines := []*core.Engine{engH, engE, engF, engQ}
	for _, e := range engines {
		defer e.Shutdown()
	}

	y, err := engH.NewAID()
	if err != nil {
		t.Fatal(err)
	}
	bp, err := engH.NewAID()
	if err != nil {
		t.Fatal(err)
	}

	// Hold machine y's affirm fan-out toward E and machine bp's buck-pass
	// toward F: the two frames whose in-flightness opens the window. Both
	// gates are installed before any matching traffic exists.
	g.hold(func(m *msg.Message) bool {
		return m.Kind == msg.KindReplace && m.AID == y && windowNode(m.To) == 1
	})
	g.hold(func(m *msg.Message) bool {
		return m.Kind == msg.KindReplace && m.AID == bp && windowNode(m.To) == 2
	})

	// Sink on node 0: a ping barrier. Per-pair FIFO delivery means a ping
	// counted here proves everything the pinging node sent to node 0
	// before it has been delivered.
	var pings atomic.Int64
	sink, err := engH.SpawnRoot(func(ctx *core.Ctx) error {
		for {
			if _, _, err := ctx.Recv(); err != nil {
				return err
			}
			pings.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sinkPID := sink.PID()

	// E: guess y, conditionally affirm bp on basis {y}.
	_, err = engE.SpawnRoot(func(ctx *core.Ctx) error {
		if ctx.Guess(y) {
			ctx.Affirm(bp)
		} else {
			ctx.Deny(bp)
		}
		ctx.Send(sinkPID, "e-done")
		_, _, err := ctx.Recv()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "E's affirm to reach machine bp", func() bool { return pings.Load() >= 1 })
	jitter()

	// Q: guess bp, record the outcome, externalize it.
	var (
		qMu         sync.Mutex
		qOutcome    bool
		externCount atomic.Int32
		externVal   atomic.Int32
	)
	qWorker, err := engQ.SpawnRoot(func(ctx *core.Ctx) error {
		ok := ctx.Guess(bp)
		qMu.Lock()
		qOutcome = ok
		qMu.Unlock()
		val := int32(2)
		if ok {
			val = 1
		}
		ctx.Externalize(func() {
			externVal.Store(val)
			externCount.Add(1)
		})
		_, _, err := ctx.Recv()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Machine bp is speculative, so it buck-passes: Q's interval ends up
	// depending on {y} with bp unsettled in its UDO set.
	waitFor(t, "buck-pass replace at Q", func() bool {
		ii, ok := findGuess(qWorker.HistorySnapshot(), bp)
		return ok && len(ii.IDO) == 1 && ii.IDO[0] == y && len(ii.UDO) == 1 && ii.UDO[0] == bp
	})
	// Ping barrier: Q's follow-up Guess(y, Iq1) is ahead of this ping in
	// the node3→node0 stream, so machine y now has Iq1 in its DOM.
	if _, err := engQ.SpawnRoot(func(ctx *core.Ctx) error {
		ctx.Send(sinkPID, "q-probe")
		_, _, err := ctx.Recv()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "Q's dependency registration at machine y", func() bool { return pings.Load() >= 2 })
	jitter()

	// F: guess bp, conditionally affirm y on basis {bp} — closing the
	// ring. The affirm's fan-out replace lands only at Iq1 (the copies to
	// E and F are gated "in flight"), where bp cycles back from UDO into
	// the dependency set and is cut: Iq1 finalizes on pure mutual support.
	_, err = engF.SpawnRoot(func(ctx *core.Ctx) error {
		if ctx.Guess(bp) {
			ctx.Affirm(y)
		} else {
			ctx.Deny(y)
		}
		_, _, err := ctx.Recv()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "premature local finalize of Q's interval", func() bool {
		ii, ok := findGuess(qWorker.HistorySnapshot(), bp)
		return ok && ii.Definite
	})

	if watermark {
		if n := externCount.Load(); n != 0 {
			t.Fatalf("watermark on: output escaped before coverage (count=%d)", n)
		}
	} else {
		if n, v := externCount.Load(), externVal.Load(); n != 1 || v != 1 {
			t.Fatalf("watermark off: expected the premature output (count=1 val=1), got count=%d val=%d", n, v)
		}
	}

	// Node 0 is presumed dead. The survivors run the liveness protocol.
	// Q goes first: with the watermark off its definite interval hides bp
	// from the sweep entirely; with it on, the uncovered finalize is
	// revocable and the sweep reaches through to deny bp.
	deadNode0 := func(pid ids.PID) bool { return windowNode(pid) == 0 }
	jitter()
	deniedByQ := engQ.DenyOwned(deadNode0, "node 0 presumed dead")
	if watermark && deniedByQ == 0 {
		t.Fatal("watermark on: liveness sweep did not reach through the uncovered definite interval")
	}
	if !watermark && deniedByQ != 0 {
		t.Fatalf("watermark off: liveness sweep saw %d orphans behind a definite interval (expected blindness)", deniedByQ)
	}
	jitter()
	engE.DenyOwned(deadNode0, "node 0 presumed dead")
	jitter()
	engF.DenyOwned(deadNode0, "node 0 presumed dead")

	for i, e := range engines {
		if !e.Settle(30 * time.Second) {
			t.Fatalf("engine %d did not settle after the death", i)
		}
	}

	qMu.Lock()
	finalOutcome := qOutcome
	qMu.Unlock()
	outcomeErr := oracle.CheckOutcomes("q",
		[]oracle.Outcome{{AID: bp, Result: finalOutcome}},
		map[ids.AID]bool{y: false, bp: false})
	var violations int64
	for _, e := range engines {
		violations += e.Violations()
	}

	if !watermark {
		// The window, realized: the committed interval had to be torn
		// down (a safety violation), the retained outcome diverges from
		// the decided verdict, and the wrong output already escaped.
		if violations == 0 {
			t.Error("watermark off: no rollback-of-definite violation recorded")
		}
		if outcomeErr == nil {
			t.Error("watermark off: retained outcome matches verdict; expected divergence")
		}
		if n, v := externCount.Load(), externVal.Load(); n != 1 || v != 1 {
			t.Errorf("watermark off: externalized output changed after commit: count=%d val=%d", n, v)
		}
		return
	}

	// Watermark on: the same schedule is repaired, not violated.
	if violations != 0 {
		t.Errorf("watermark on: %d violations; the revocable finalize should absorb the rollback", violations)
	}
	if st := qWorker.Snapshot(); st.Restarts < 1 {
		t.Errorf("watermark on: Q was never rolled back (restarts=%d)", st.Restarts)
	}
	if outcomeErr != nil {
		t.Errorf("watermark on: retained outcome diverges after repair: %v", outcomeErr)
	}
	if n := externCount.Load(); n != 0 {
		t.Fatalf("watermark on: output released while uncovered (count=%d)", n)
	}
	// Coverage arrives; the corrected output is released exactly once.
	trackers[3].SetFrontier(1, map[int]uint32{3: math.MaxUint32})
	engQ.FlushStable()
	if n, v := externCount.Load(), externVal.Load(); n != 1 || v != 2 {
		t.Errorf("watermark on: gated release wrong: count=%d val=%d (want 1, 2)", n, v)
	}
}
