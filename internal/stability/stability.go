// Package stability implements HOPE's global commit watermark: a
// Mattern-style distributed stability protocol (the GVT computation of
// Time Warp systems) that computes, per cluster view epoch, the frontier
// below which every interval is *globally stable* — no in-flight
// Retract, Revive, or affirm-refresh anywhere in the system can ever
// reach it again.
//
// DESIGN.md §4.9 documents why the frontier is needed: the paper's local
// commit rule lets an interval finalize while a conditional affirm it
// transitively rests on is still retractable, so a "definite" interval
// can later receive a Rollback or Revive (the premature-commit window).
// The watermark closes the window at the *externalization* boundary:
// intervals still finalize locally exactly as the paper specifies (the
// wait-free local rule is untouched), but outputs — client prints, RPC
// responses — are released only once the watermark covers the emitting
// interval's epoch. Below the watermark, definite is irrevocable; above
// it, definite is a revocable speculation that the engine can unwind
// (see core's revocable-commit mode).
//
// The protocol is a two-sweep quiescence detection in the style of
// Mattern's distributed termination/GVT algorithms: the initiator (the
// lowest-numbered live member of the current cluster view) collects a
// Report from every live member twice in a row. The double collection is
// valid — a consistent cut with an empty message frontier — iff between
// the two sweeps no node opened, settled, or revoked an interval
// (per-node event counters unchanged), every node was quiescent at both
// sweeps with zero unsettled intervals, no node sent protocol messages
// (per-peer send sequence numbers unchanged), and every message sent by
// sweep one was delivered by sweep two (pairwise seq/ack drain). At such
// a cut, every interval ever allocated is settled and no protocol
// message is in flight, so nothing can retract a chain any finalized
// interval rests on: each node's maximum allocated interval epoch
// becomes its watermark entry. Frontiers only ever grow (per-node max
// merge), survive restarts through the durable layer's recWatermark
// records, and tolerate membership churn: a dead-but-unevicted member
// blocks rounds (its unacked in-flight frames fail the drain check, and
// it answers no sweep), and rounds resume once the cluster view's epoch
// floor evicts it from the member set.
package stability

import (
	"fmt"
	"sort"
	"sync"
)

// Tracker is one node's local stability bookkeeping: the interval event
// counter and unsettled count that stability reports snapshot, and the
// globally agreed frontier that gates externalization. It implements
// core.Stability. All methods are safe for concurrent use.
type Tracker struct {
	mu        sync.Mutex
	node      int
	events    uint64
	unsettled int64
	maxEpoch  uint32
	viewEpoch uint64
	frontier  map[int]uint32

	audit *Audit
}

// NewTracker constructs a tracker for the given node ID.
func NewTracker(node int) *Tracker {
	return &Tracker{node: node, frontier: make(map[int]uint32)}
}

// Node returns the owning node ID.
func (t *Tracker) Node() int { return t.node }

// SetAudit attaches an audit log that records frontier advances and
// gated emissions for the stability oracle. Nil detaches.
func (t *Tracker) SetAudit(a *Audit) {
	t.mu.Lock()
	t.audit = a
	t.mu.Unlock()
}

// Opened records the birth of a speculative interval.
func (t *Tracker) Opened(epoch uint32) {
	t.mu.Lock()
	t.events++
	t.unsettled++
	if epoch > t.maxEpoch {
		t.maxEpoch = epoch
	}
	t.mu.Unlock()
}

// Issued records an interval definite at birth (empty IDO): it opens and
// settles in one step, but still perturbs the event counter so a
// stability cut spanning it is invalidated.
func (t *Tracker) Issued(epoch uint32) {
	t.mu.Lock()
	t.events++
	if epoch > t.maxEpoch {
		t.maxEpoch = epoch
	}
	t.mu.Unlock()
}

// Settled records that a speculative interval left the unsettled set:
// it finalized, or it was discarded by rollback.
func (t *Tracker) Settled(epoch uint32) {
	t.mu.Lock()
	t.events++
	t.unsettled--
	t.mu.Unlock()
}

// Revoked records the un-finalize of a definite interval (revocable
// commit repairing a premature commit). The interval was already counted
// settled at finalize and is discarded by the accompanying rollback, so
// only the event counter moves — which is what matters: any cut that
// could have spanned the revocation is invalidated by it.
func (t *Tracker) Revoked(epoch uint32) {
	t.mu.Lock()
	t.events++
	t.mu.Unlock()
}

// Covered reports whether the agreed frontier covers a local interval
// epoch: covered intervals are globally stable and may externalize.
func (t *Tracker) Covered(epoch uint32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.frontier[t.node] >= epoch
}

// Emitted records that a gated output of the given interval epoch was
// released, for the stability oracle's "no output above the watermark"
// invariant.
func (t *Tracker) Emitted(epoch uint32) {
	t.mu.Lock()
	a, w := t.audit, t.frontier[t.node]
	t.mu.Unlock()
	if a != nil {
		a.emitted(t.node, epoch, w)
	}
}

// Report snapshots the tracker's contribution to a stability report.
func (t *Tracker) Report() (events uint64, unsettled int64, maxEpoch uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events, t.unsettled, t.maxEpoch
}

// SetFrontier merges an agreed frontier into the tracker (per-node max:
// the frontier is monotone by construction, and stale advances from an
// older round must not regress it). It reports whether any entry
// actually advanced.
func (t *Tracker) SetFrontier(viewEpoch uint64, frontier map[int]uint32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	advanced := false
	for n, e := range frontier {
		if e > t.frontier[n] {
			t.frontier[n] = e
			advanced = true
		}
	}
	if viewEpoch > t.viewEpoch {
		t.viewEpoch = viewEpoch
	}
	return advanced
}

// Frontier returns the latest view epoch and a copy of the agreed
// frontier map.
func (t *Tracker) Frontier() (uint64, map[int]uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]uint32, len(t.frontier))
	for n, e := range t.frontier {
		out[n] = e
	}
	return t.viewEpoch, out
}

// FormatFrontier renders a frontier map deterministically
// ("0:41,1:17,2:33"), used by the HOPED STABLE stdout line and waldump.
func FormatFrontier(f map[int]uint32) string {
	nodes := make([]int, 0, len(f))
	for n := range f {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	s := ""
	for i, n := range nodes {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d:%d", n, f[n])
	}
	return s
}
