package stability

import (
	"sync"
	"time"

	"github.com/hope-dist/hope/internal/trace"
)

// Config parameterizes a round Agent.
type Config struct {
	// Node is this node's ID.
	Node int
	// Tracker is the local stability bookkeeping the agent reports from
	// and applies agreed frontiers to. Required.
	Tracker *Tracker
	// Members returns the current cluster view: its epoch and the live
	// member node IDs (including self). In a static deployment it returns
	// epoch 0 and the fixed peer list. Required.
	Members func() (viewEpoch uint64, nodes []int)
	// Send transmits a stability payload to a peer node, returning false
	// if the peer is unreachable. Wired to wire.Node.Stability in a real
	// deployment, or an in-memory mesh in tests. Required.
	Send func(to int, payload []byte) bool
	// Quiet reports local engine quiescence: every mailbox drained, every
	// process parked. Nil means always quiet (tracker-only deployments).
	Quiet func() bool
	// Seqs snapshots the per-peer wire sequence state: last sequence sent
	// toward each peer and highest contiguous sequence delivered from
	// each. Nil means no wire layer (the drain check is vacuous).
	Seqs func() (sent, delivered map[int]uint64)
	// Interval is the round cadence when this node is the initiator
	// (default 250ms). A new round starts only after the previous one
	// completed or timed out.
	Interval time.Duration
	// Timeout abandons a round whose sweep never completes — a member
	// died mid-round, or its report is stuck behind a partition (default
	// 4×Interval).
	Timeout time.Duration
	// OnAdvance runs after the local frontier advanced (on the initiator
	// and on every member receiving the broadcast): persist the frontier,
	// flush gated outputs, print the HOPED STABLE line. May be nil.
	OnAdvance func(viewEpoch uint64, frontier map[int]uint32)
	// Audit, when non-nil, records every advance this agent decides (the
	// initiator's view of the run) for the stability oracle.
	Audit *Audit
	// Tracer receives round lifecycle events (nil = discard).
	Tracer trace.Tracer
}

// Agent drives stability rounds for one node. Every node runs an agent;
// only the initiator of the current view (its lowest-numbered live
// member) originates sweeps, so leadership moves automatically with
// membership churn. Rounds ride the out-of-band stability wire frame and
// never touch the sequenced protocol stream — a round in progress adds
// no messages a cut would have to drain.
type Agent struct {
	cfg Config

	mu      sync.Mutex
	round   uint64
	sweep   uint8 // 0 = no round in flight
	started time.Time
	members []int
	view    uint64
	r1, r2  map[int]Report

	stop chan struct{}
	done chan struct{}
}

// NewAgent constructs an agent. Call Start to begin driving rounds;
// HandlePayload must be wired to the transport's stability frame
// delivery before Start.
func NewAgent(cfg Config) *Agent {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 4 * cfg.Interval
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Nop
	}
	return &Agent{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the round ticker goroutine.
func (a *Agent) Start() {
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.tick()
			}
		}
	}()
}

// Stop halts the ticker. In-flight payload handling remains safe.
func (a *Agent) Stop() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
		<-a.done
	}
}

// localReport snapshots this node's report for the given round/sweep.
func (a *Agent) localReport(viewEpoch, round uint64, sweep uint8) Report {
	events, unsettled, maxEpoch := a.cfg.Tracker.Report()
	r := Report{
		Node: a.cfg.Node, ViewEpoch: viewEpoch, Round: round, Sweep: sweep,
		Events: events, Unsettled: unsettled, MaxEpoch: maxEpoch, Quiet: true,
	}
	if a.cfg.Quiet != nil {
		r.Quiet = a.cfg.Quiet()
	}
	if a.cfg.Seqs != nil {
		r.Sent, r.Delivered = a.cfg.Seqs()
	}
	return r
}

// tick drives the initiator state machine: start a round if none is in
// flight (and we lead the current view), or abandon one that timed out.
func (a *Agent) tick() {
	viewEpoch, nodes := a.cfg.Members()
	if len(nodes) == 0 {
		return
	}
	lead := nodes[0]
	for _, n := range nodes {
		if n < lead {
			lead = n
		}
	}
	a.mu.Lock()
	if lead != a.cfg.Node {
		a.sweep = 0 // lost leadership mid-round: abandon
		a.mu.Unlock()
		return
	}
	if a.sweep != 0 {
		if time.Since(a.started) < a.cfg.Timeout {
			a.mu.Unlock()
			return // round still in flight
		}
		a.cfg.Tracer.Emit(trace.Event{Kind: trace.Info,
			Detail: "stability: round timed out (member unreachable or busy)"})
	}
	a.round++
	a.sweep = 1
	a.started = time.Now()
	a.view = viewEpoch
	a.members = append([]int(nil), nodes...)
	a.r1 = map[int]Report{}
	a.r2 = map[int]Report{}
	round := a.round
	members := a.members
	a.mu.Unlock()

	a.collect(a.localReport(viewEpoch, round, 1))
	for _, n := range members {
		if n != a.cfg.Node {
			a.cfg.Send(n, EncodeSweep(viewEpoch, round, 1))
		}
	}
}

// HandlePayload processes one stability frame from a peer. It is safe to
// call from transport read goroutines.
func (a *Agent) HandlePayload(from int, b []byte) {
	p, err := Decode(b)
	if err != nil {
		a.cfg.Tracer.Emit(trace.Event{Kind: trace.Info, Detail: "stability: " + err.Error()})
		return
	}
	switch p.Kind {
	case pkSweep:
		// Member side: answer with our current report.
		a.cfg.Send(from, EncodeReport(a.localReport(p.ViewEpoch, p.Round, p.Sweep)))
	case pkReport:
		a.collect(p.Report)
	case pkAdvance:
		a.apply(p.ViewEpoch, p.Frontier)
	}
}

// collect folds a report into the initiator's current round, advancing
// to sweep two when the first completes and deciding the cut when the
// second does.
func (a *Agent) collect(r Report) {
	a.mu.Lock()
	if a.sweep == 0 || r.Round != a.round || r.ViewEpoch != a.view {
		a.mu.Unlock()
		return // stale: an abandoned round or an older view
	}
	switch r.Sweep {
	case 1:
		a.r1[r.Node] = r
	case 2:
		a.r2[r.Node] = r
	default:
		a.mu.Unlock()
		return
	}
	complete := func(m map[int]Report) bool {
		for _, n := range a.members {
			if _, ok := m[n]; !ok {
				return false
			}
		}
		return true
	}
	switch {
	case a.sweep == 1 && r.Sweep == 1 && complete(a.r1):
		a.sweep = 2
		view, round, members := a.view, a.round, a.members
		a.mu.Unlock()
		a.collect(a.localReport(view, round, 2))
		for _, n := range members {
			if n != a.cfg.Node {
				a.cfg.Send(n, EncodeSweep(view, round, 2))
			}
		}
		return
	case a.sweep == 2 && r.Sweep == 2 && complete(a.r2):
		view, members, r1, r2 := a.view, a.members, a.r1, a.r2
		a.sweep = 0
		a.mu.Unlock()
		a.decide(view, members, r1, r2)
		return
	}
	a.mu.Unlock()
}

// decide applies ValidCut to a completed double sweep and, when valid,
// advances and broadcasts the frontier.
func (a *Agent) decide(view uint64, members []int, r1, r2 map[int]Report) {
	if err := ValidCut(view, members, r1, r2); err != nil {
		a.cfg.Tracer.Emit(trace.Event{Kind: trace.Info, Detail: "stability: cut invalid: " + err.Error()})
		return
	}
	frontier := CutFrontier(members, r2)
	if a.cfg.Audit != nil {
		a.cfg.Audit.Advanced(AdvanceRecord{
			ViewEpoch: view, Members: append([]int(nil), members...),
			R1: r1, R2: r2, Frontier: frontier,
		})
	}
	a.apply(view, frontier)
	for _, n := range members {
		if n != a.cfg.Node {
			a.cfg.Send(n, EncodeAdvance(view, frontier))
		}
	}
}

// apply merges an agreed frontier locally and fires OnAdvance if it
// moved.
func (a *Agent) apply(view uint64, frontier map[int]uint32) {
	if !a.cfg.Tracker.SetFrontier(view, frontier) {
		return
	}
	a.cfg.Tracer.Emit(trace.Event{Kind: trace.Info,
		Detail: "stability: frontier advanced to " + FormatFrontier(frontier)})
	if a.cfg.OnAdvance != nil {
		a.cfg.OnAdvance(view, frontier)
	}
}
