package stability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Report is one node's answer to a stability sweep: a snapshot of its
// interval event counter, unsettled count, engine quiescence, maximum
// allocated interval epoch, and per-peer wire send/deliver sequence
// state. Two matching sweeps of reports form a valid cut (see ValidCut).
type Report struct {
	Node      int
	ViewEpoch uint64
	Round     uint64
	Sweep     uint8 // 1 or 2
	Events    uint64
	Unsettled int64
	MaxEpoch  uint32
	Quiet     bool

	// Sent[j] is the last wire sequence number this node assigned toward
	// peer j; Delivered[j] is the highest contiguous sequence this node
	// has delivered from peer j. Empty maps mean the deployment has no
	// wire layer (in-process simulation) and the drain check is vacuous.
	Sent      map[int]uint64
	Delivered map[int]uint64
}

// payload kinds of the stability wire frame.
const (
	pkSweep   = 1 // initiator -> member: report yourselves (round, sweep)
	pkReport  = 2 // member -> initiator: Report
	pkAdvance = 3 // initiator -> member: agreed frontier
)

func appendUv(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func readUv(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("stability: short payload")
	}
	return v, b[n:], nil
}

func appendSeqMap(b []byte, m map[int]uint64) []byte {
	b = appendUv(b, uint64(len(m)))
	nodes := make([]int, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		b = appendUv(b, uint64(n))
		b = appendUv(b, m[n])
	}
	return b
}

func readSeqMap(b []byte) (map[int]uint64, []byte, error) {
	cnt, b, err := readUv(b)
	if err != nil {
		return nil, nil, err
	}
	m := make(map[int]uint64, cnt)
	for i := uint64(0); i < cnt; i++ {
		var n, v uint64
		if n, b, err = readUv(b); err != nil {
			return nil, nil, err
		}
		if v, b, err = readUv(b); err != nil {
			return nil, nil, err
		}
		m[int(n)] = v
	}
	return m, b, nil
}

// EncodeSweep encodes a sweep request.
func EncodeSweep(viewEpoch, round uint64, sweep uint8) []byte {
	b := []byte{pkSweep, sweep}
	b = appendUv(b, viewEpoch)
	b = appendUv(b, round)
	return b
}

// EncodeReport encodes a member report.
func EncodeReport(r Report) []byte {
	b := []byte{pkReport, r.Sweep}
	b = appendUv(b, uint64(r.Node))
	b = appendUv(b, r.ViewEpoch)
	b = appendUv(b, r.Round)
	b = appendUv(b, r.Events)
	b = appendUv(b, uint64(r.Unsettled)) // negative would be a bug; reported as huge
	b = appendUv(b, uint64(r.MaxEpoch))
	if r.Quiet {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendSeqMap(b, r.Sent)
	b = appendSeqMap(b, r.Delivered)
	return b
}

// EncodeAdvance encodes an agreed frontier broadcast.
func EncodeAdvance(viewEpoch uint64, frontier map[int]uint32) []byte {
	b := []byte{pkAdvance}
	b = appendUv(b, viewEpoch)
	b = appendUv(b, uint64(len(frontier)))
	nodes := make([]int, 0, len(frontier))
	for n := range frontier {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		b = appendUv(b, uint64(n))
		b = appendUv(b, uint64(frontier[n]))
	}
	return b
}

// Payload is a decoded stability frame.
type Payload struct {
	Kind      int // pkSweep, pkReport, pkAdvance
	ViewEpoch uint64
	Round     uint64
	Sweep     uint8
	Report    Report         // pkReport
	Frontier  map[int]uint32 // pkAdvance
}

// Decode parses a stability frame payload.
func Decode(b []byte) (Payload, error) {
	var p Payload
	if len(b) < 1 {
		return p, errors.New("stability: empty payload")
	}
	p.Kind = int(b[0])
	var err error
	switch p.Kind {
	case pkSweep:
		if len(b) < 2 {
			return p, errors.New("stability: short sweep")
		}
		p.Sweep = b[1]
		b = b[2:]
		if p.ViewEpoch, b, err = readUv(b); err != nil {
			return p, err
		}
		if p.Round, _, err = readUv(b); err != nil {
			return p, err
		}
	case pkReport:
		if len(b) < 2 {
			return p, errors.New("stability: short report")
		}
		r := Report{Sweep: b[1]}
		b = b[2:]
		var v uint64
		if v, b, err = readUv(b); err != nil {
			return p, err
		}
		r.Node = int(v)
		if r.ViewEpoch, b, err = readUv(b); err != nil {
			return p, err
		}
		if r.Round, b, err = readUv(b); err != nil {
			return p, err
		}
		if r.Events, b, err = readUv(b); err != nil {
			return p, err
		}
		if v, b, err = readUv(b); err != nil {
			return p, err
		}
		r.Unsettled = int64(v)
		if v, b, err = readUv(b); err != nil {
			return p, err
		}
		r.MaxEpoch = uint32(v)
		if len(b) < 1 {
			return p, errors.New("stability: short report flags")
		}
		r.Quiet = b[0] == 1
		b = b[1:]
		if r.Sent, b, err = readSeqMap(b); err != nil {
			return p, err
		}
		if r.Delivered, _, err = readSeqMap(b); err != nil {
			return p, err
		}
		p.Report = r
		p.ViewEpoch, p.Round = r.ViewEpoch, r.Round
	case pkAdvance:
		b = b[1:]
		if p.ViewEpoch, b, err = readUv(b); err != nil {
			return p, err
		}
		var cnt uint64
		if cnt, b, err = readUv(b); err != nil {
			return p, err
		}
		p.Frontier = make(map[int]uint32, cnt)
		for i := uint64(0); i < cnt; i++ {
			var n, e uint64
			if n, b, err = readUv(b); err != nil {
				return p, err
			}
			if e, b, err = readUv(b); err != nil {
				return p, err
			}
			p.Frontier[int(n)] = uint32(e)
		}
	default:
		return p, fmt.Errorf("stability: unknown payload kind %d", p.Kind)
	}
	return p, nil
}

// ValidCut decides whether two report sweeps over the same member set
// form a consistent globally quiescent cut, returning nil when they do
// and an error naming the first obstruction otherwise. It is pure so the
// round agent and the stability oracle apply the identical rule.
//
// The cut is valid iff, for every member of the view:
//
//   - both sweeps carry its report, at the expected view epoch;
//   - the node was quiescent with zero unsettled intervals at both
//     sweeps;
//   - its interval event counter did not move between the sweeps (no
//     open/settle/revoke slipped between them);
//   - it assigned no new wire sequence numbers between the sweeps (no
//     protocol message sent); and
//   - everything it had sent by sweep one was delivered at its peer by
//     sweep two (pairwise seq/ack drain: a dead-but-unevicted member's
//     unacked in-flight frames fail here, so the watermark cannot
//     advance past a corpse until the epoch floor evicts it).
func ValidCut(viewEpoch uint64, members []int, r1, r2 map[int]Report) error {
	for _, n := range members {
		a, ok1 := r1[n]
		b, ok2 := r2[n]
		if !ok1 || !ok2 {
			return fmt.Errorf("member %d missing from sweep (1:%v 2:%v)", n, ok1, ok2)
		}
		if a.ViewEpoch != viewEpoch || b.ViewEpoch != viewEpoch {
			return fmt.Errorf("member %d reported at view %d/%d, cut at view %d", n, a.ViewEpoch, b.ViewEpoch, viewEpoch)
		}
		if !a.Quiet || !b.Quiet {
			return fmt.Errorf("member %d not quiescent (sweep1=%v sweep2=%v)", n, a.Quiet, b.Quiet)
		}
		if a.Unsettled != 0 || b.Unsettled != 0 {
			return fmt.Errorf("member %d has unsettled intervals (sweep1=%d sweep2=%d)", n, a.Unsettled, b.Unsettled)
		}
		if a.Events != b.Events {
			return fmt.Errorf("member %d interval events moved between sweeps (%d -> %d)", n, a.Events, b.Events)
		}
		for _, m := range members {
			if m == n {
				continue
			}
			if a.Sent[m] != b.Sent[m] {
				return fmt.Errorf("member %d sent to %d between sweeps (%d -> %d)", n, m, a.Sent[m], b.Sent[m])
			}
			if got := r2[m].Delivered[n]; got < a.Sent[m] {
				return fmt.Errorf("member %d's frames to %d not drained (sent %d, delivered %d)", n, m, a.Sent[m], got)
			}
		}
	}
	return nil
}

// CutFrontier builds the agreed frontier from a valid cut's second
// sweep: each member's entry is its maximum allocated interval epoch —
// everything it had ever opened was settled at the cut.
func CutFrontier(members []int, r2 map[int]Report) map[int]uint32 {
	f := make(map[int]uint32, len(members))
	for _, n := range members {
		f[n] = r2[n].MaxEpoch
	}
	return f
}
