package stability

import "sync"

// Audit records the observable stability history of a run — frontier
// advances with the report sweeps that justified them, and gated
// emissions with the frontier in force when they were released — so the
// stability oracle (internal/oracle CheckStability) can re-derive every
// advance and check that no output escaped above the watermark.
type Audit struct {
	mu        sync.Mutex
	advances  []AdvanceRecord
	emissions []EmissionRecord
}

// AdvanceRecord is one frontier advance and its justification.
type AdvanceRecord struct {
	ViewEpoch uint64
	Members   []int
	R1, R2    map[int]Report
	Frontier  map[int]uint32
}

// EmissionRecord is one gated output release: the emitting node, the
// interval epoch of the output, and the node's own frontier entry at
// release time.
type EmissionRecord struct {
	Node     int
	Epoch    uint32
	Frontier uint32
}

// NewAudit constructs an empty audit log.
func NewAudit() *Audit { return &Audit{} }

// Advanced records a frontier advance.
func (a *Audit) Advanced(rec AdvanceRecord) {
	a.mu.Lock()
	a.advances = append(a.advances, rec)
	a.mu.Unlock()
}

func (a *Audit) emitted(node int, epoch uint32, frontier uint32) {
	a.mu.Lock()
	a.emissions = append(a.emissions, EmissionRecord{Node: node, Epoch: epoch, Frontier: frontier})
	a.mu.Unlock()
}

// Advances returns a snapshot of the recorded frontier advances.
func (a *Audit) Advances() []AdvanceRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AdvanceRecord, len(a.advances))
	copy(out, a.advances)
	return out
}

// Emissions returns a snapshot of the recorded output releases.
func (a *Audit) Emissions() []EmissionRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]EmissionRecord, len(a.emissions))
	copy(out, a.emissions)
	return out
}
