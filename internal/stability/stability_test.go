package stability

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestTrackerCounters(t *testing.T) {
	tr := NewTracker(2)
	if tr.Node() != 2 {
		t.Fatalf("node = %d", tr.Node())
	}
	tr.Opened(5)
	tr.Opened(9)
	tr.Issued(12)
	tr.Settled(5)
	events, unsettled, maxEpoch := tr.Report()
	if events != 4 || unsettled != 1 || maxEpoch != 12 {
		t.Fatalf("report = (%d, %d, %d), want (4, 1, 12)", events, unsettled, maxEpoch)
	}
	tr.Revoked(9) // un-finalize: only the event counter moves
	tr.Settled(9)
	events, unsettled, _ = tr.Report()
	if events != 6 || unsettled != 0 {
		t.Fatalf("after revoke+settle: (%d, %d), want (6, 0)", events, unsettled)
	}
}

func TestTrackerFrontier(t *testing.T) {
	tr := NewTracker(1)
	if tr.Covered(1) {
		t.Fatal("empty frontier covers epoch 1")
	}
	if !tr.SetFrontier(1, map[int]uint32{0: 4, 1: 7}) {
		t.Fatal("first frontier did not advance")
	}
	if !tr.Covered(7) || tr.Covered(8) {
		t.Fatal("coverage must follow this node's own frontier entry")
	}
	// Stale advance from an older round: nothing regresses, not advanced.
	if tr.SetFrontier(1, map[int]uint32{0: 2, 1: 6}) {
		t.Fatal("stale frontier reported as advance")
	}
	// Partial advance still merges per-node maxima.
	if !tr.SetFrontier(2, map[int]uint32{0: 9, 1: 5}) {
		t.Fatal("partial advance not reported")
	}
	view, f := tr.Frontier()
	if view != 2 || !reflect.DeepEqual(f, map[int]uint32{0: 9, 1: 7}) {
		t.Fatalf("frontier = e%d %v, want e2 map[0:9 1:7]", view, f)
	}
	if got := FormatFrontier(f); got != "0:9,1:7" {
		t.Fatalf("FormatFrontier = %q", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p, err := Decode(EncodeSweep(3, 17, 2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != pkSweep || p.ViewEpoch != 3 || p.Round != 17 || p.Sweep != 2 {
		t.Fatalf("sweep round-trip: %+v", p)
	}

	r := Report{
		Node: 4, ViewEpoch: 9, Round: 31, Sweep: 1,
		Events: 1 << 40, Unsettled: 3, MaxEpoch: 77, Quiet: true,
		Sent:      map[int]uint64{0: 12, 2: 999},
		Delivered: map[int]uint64{0: 11},
	}
	p, err = Decode(EncodeReport(r))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != pkReport || !reflect.DeepEqual(p.Report, r) {
		t.Fatalf("report round-trip: %+v != %+v", p.Report, r)
	}

	f := map[int]uint32{0: 41, 1: 17, 5: 3}
	p, err = Decode(EncodeAdvance(7, f))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != pkAdvance || p.ViewEpoch != 7 || !reflect.DeepEqual(p.Frontier, f) {
		t.Fatalf("advance round-trip: %+v", p)
	}

	for _, bad := range [][]byte{nil, {}, {pkSweep}, {pkReport, 1, 0x80}, {99, 1, 2}} {
		if _, err := Decode(bad); err == nil {
			t.Fatalf("Decode(%v) accepted", bad)
		}
	}
	// Truncations of a valid frame must error, never panic.
	full := EncodeReport(r)
	for i := 1; i < len(full); i++ {
		if _, err := Decode(full[:i]); err == nil {
			t.Fatalf("truncated report (%d/%d bytes) accepted", i, len(full))
		}
	}
}

// cutReports builds a canonical valid double sweep over members {0,1,2},
// which each case below perturbs into a specific obstruction.
func cutReports() (r1, r2 map[int]Report) {
	mk := func(node int, sweep uint8) Report {
		sent := map[int]uint64{}
		delivered := map[int]uint64{}
		for p := 0; p < 3; p++ {
			if p == node {
				continue
			}
			sent[p] = uint64(10*node + p)
			delivered[p] = uint64(10*p + node) // exactly what p sent us
		}
		return Report{
			Node: node, ViewEpoch: 1, Round: 1, Sweep: sweep,
			Events: uint64(100 + node), MaxEpoch: uint32(20 + node), Quiet: true,
			Sent: sent, Delivered: delivered,
		}
	}
	r1, r2 = map[int]Report{}, map[int]Report{}
	for n := 0; n < 3; n++ {
		r1[n] = mk(n, 1)
		r2[n] = mk(n, 2)
	}
	return r1, r2
}

func TestValidCut(t *testing.T) {
	members := []int{0, 1, 2}
	r1, r2 := cutReports()
	if err := ValidCut(1, members, r1, r2); err != nil {
		t.Fatalf("canonical cut rejected: %v", err)
	}
	want := map[int]uint32{0: 20, 1: 21, 2: 22}
	if got := CutFrontier(members, r2); !reflect.DeepEqual(got, want) {
		t.Fatalf("CutFrontier = %v, want %v", got, want)
	}

	perturb := func(name string, f func(r1, r2 map[int]Report)) {
		p1, p2 := cutReports()
		f(p1, p2)
		if err := ValidCut(1, members, p1, p2); err == nil {
			t.Errorf("%s: cut accepted", name)
		}
	}
	perturb("missing member", func(r1, r2 map[int]Report) { delete(r2, 1) })
	perturb("wrong view", func(r1, r2 map[int]Report) {
		r := r1[0]
		r.ViewEpoch = 2
		r1[0] = r
	})
	perturb("not quiescent", func(r1, r2 map[int]Report) {
		r := r2[2]
		r.Quiet = false
		r2[2] = r
	})
	perturb("unsettled intervals", func(r1, r2 map[int]Report) {
		r := r1[1]
		r.Unsettled = 3
		r1[1] = r
	})
	perturb("events moved between sweeps", func(r1, r2 map[int]Report) {
		r := r2[0]
		r.Events++
		r2[0] = r
	})
	perturb("sent between sweeps", func(r1, r2 map[int]Report) {
		r := r2[1]
		r.Sent = map[int]uint64{0: r.Sent[0] + 1, 2: r.Sent[2]}
		r2[1] = r
	})
	perturb("undrained frames", func(r1, r2 map[int]Report) {
		// Node 2's frames toward node 0 not all delivered by sweep two —
		// the signature of a dead-but-unevicted member.
		r := r2[0]
		r.Delivered = map[int]uint64{1: r.Delivered[1], 2: r.Delivered[2] - 1}
		r2[0] = r
	})
}

// mesh is a synchronous in-memory stability transport for agent tests.
type mesh struct {
	mu     sync.Mutex
	agents map[int]*Agent
}

func (m *mesh) send(from, to int, payload []byte) bool {
	m.mu.Lock()
	a := m.agents[to]
	m.mu.Unlock()
	if a == nil {
		return false
	}
	// Deliver on a fresh goroutine like a real transport read loop would,
	// so no agent lock is held across the hop.
	go a.HandlePayload(from, payload)
	return true
}

// TestAgentRounds runs three agents over an in-memory mesh and waits for
// the two-sweep protocol to advance every node's frontier to the maxima
// the trackers report.
func TestAgentRounds(t *testing.T) {
	m := &mesh{agents: map[int]*Agent{}}
	members := []int{0, 1, 2}
	trackers := map[int]*Tracker{}
	advanced := make(chan map[int]uint32, 64)

	for _, n := range members {
		tr := NewTracker(n)
		// Give each node some settled history: maxEpoch n*10+5, all quiet.
		tr.Opened(uint32(n*10 + 5))
		tr.Settled(uint32(n*10 + 5))
		trackers[n] = tr
	}
	for _, n := range members {
		n := n
		a := NewAgent(Config{
			Node:    n,
			Tracker: trackers[n],
			Members: func() (uint64, []int) { return 1, members },
			Send:    func(to int, b []byte) bool { return m.send(n, to, b) },
			// Quiet and Seqs nil: tracker-only deployment, drain vacuous.
			Interval: 2 * time.Millisecond,
			OnAdvance: func(view uint64, f map[int]uint32) {
				if n == 1 { // any single witness suffices
					advanced <- f
				}
			},
		})
		m.mu.Lock()
		m.agents[n] = a
		m.mu.Unlock()
		a.Start()
		defer a.Stop()
	}

	want := map[int]uint32{0: 5, 1: 15, 2: 25}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case f := <-advanced:
			if reflect.DeepEqual(f, want) {
				// The witness node's own tracker must agree.
				if _, got := trackers[1].Frontier(); !reflect.DeepEqual(got, want) {
					t.Fatalf("tracker frontier %v after advance %v", got, f)
				}
				return
			}
		case <-deadline:
			t.Fatal("no frontier advance within deadline")
		}
	}
}

// TestAgentFollowerSilent checks that a non-leader agent never initiates
// sweeps: with the leader absent from the mesh, no round can complete and
// no frontier advances.
func TestAgentFollowerSilent(t *testing.T) {
	m := &mesh{agents: map[int]*Agent{}}
	members := []int{0, 1} // node 0 leads but is never started
	tr := NewTracker(1)
	tr.Opened(7)
	tr.Settled(7)
	fired := make(chan struct{}, 1)
	a := NewAgent(Config{
		Node:     1,
		Tracker:  tr,
		Members:  func() (uint64, []int) { return 1, members },
		Send:     func(to int, b []byte) bool { return m.send(1, to, b) },
		Interval: time.Millisecond,
		OnAdvance: func(uint64, map[int]uint32) {
			select {
			case fired <- struct{}{}:
			default:
			}
		},
	})
	m.mu.Lock()
	m.agents[1] = a
	m.mu.Unlock()
	a.Start()
	defer a.Stop()

	select {
	case <-fired:
		t.Fatal("follower advanced a frontier without a leader")
	case <-time.After(50 * time.Millisecond):
	}
	if _, f := tr.Frontier(); len(f) != 0 {
		t.Fatalf("follower frontier moved: %v", f)
	}
}
