// Package aid implements the AID process of the paper's Section 5: a
// state machine (Figure 4) modelling one optimistic assumption, tracking
// the set of dependent intervals (DOM) and the conditional-affirm set
// (A_IDO), and reacting to Guess, Affirm, Deny (Figures 5–8) and Retract
// messages.
//
// The state machine itself (Machine) is pure — Step consumes one message
// and returns the messages to transmit — which lets the test suite
// exhaustively cover every (state × message) transition. Run binds a
// Machine to a vpm process.
package aid

import (
	"fmt"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/mailbox"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/sets"
	"github.com/hope-dist/hope/internal/trace"
	"github.com/hope-dist/hope/internal/vpm"
)

// State is the truth value of an assumption, extended with the partial
// knowledge optimism introduces (paper §5.2).
type State int

const (
	// Cold — no primitives applied yet.
	Cold State = iota + 1
	// Hot — guessed but not yet affirmed or denied.
	Hot
	// Maybe — speculatively affirmed, conditional on the A_IDO set.
	Maybe
	// True — unconditionally affirmed (final).
	True
	// False — unconditionally denied (final).
	False
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Cold:
		return "Cold"
	case Hot:
		return "Hot"
	case Maybe:
		return "Maybe"
	case True:
		return "True"
	case False:
		return "False"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Final reports whether the state is terminal (True or False).
func (s State) Final() bool { return s == True || s == False }

// Machine is the AID state machine for one assumption.
type Machine struct {
	self   ids.AID
	state  State
	dom    *sets.IntervalSet // Depends-On-Me: intervals contingent on this AID
	aido   *sets.AIDSet      // Affirm-I-Depend-On: AIDs predicating a speculative affirm
	tracer trace.Tracer

	// affirmer is the interval whose speculative affirm produced the
	// current Maybe state; a Retract only applies if it matches. In
	// revocable mode it is also retained on True: the unconditional
	// affirm a finalize sends is itself revocable until the commit
	// watermark covers the finalizing interval.
	affirmer ids.IntervalID

	// revocable marks the commit-watermark mode (DESIGN.md §12): True is
	// not terminal until the global stability frontier covers the
	// affirming interval. The machine keeps DOM entries for dependents
	// that resolved through True, accepts a Retract of the affirm that
	// produced True, and treats a Deny of a True assumption as a
	// revocation (rollback fan-out) rather than a user-error violation.
	revocable bool
}

// NewMachine returns a Cold machine for assumption self.
func NewMachine(self ids.AID, tracer trace.Tracer) *Machine {
	if tracer == nil {
		tracer = trace.Nop
	}
	return &Machine{
		self:   self,
		state:  Cold,
		dom:    sets.NewIntervalSet(),
		aido:   sets.NewAIDSet(),
		tracer: tracer,
	}
}

// EnableRevocable switches the machine into revocable-commit mode (see
// the revocable field). Called once at construction time by RunMode;
// never mid-run.
func (a *Machine) EnableRevocable() { a.revocable = true }

// Self returns the assumption this machine models.
func (a *Machine) Self() ids.AID { return a.self }

// State returns the current truth value.
func (a *Machine) State() State { return a.state }

// DOM returns a copy of the Depends-On-Me interval set.
func (a *Machine) DOM() []ids.IntervalID { return a.dom.Slice() }

// AIDO returns a copy of the conditional-affirm dependency set.
func (a *Machine) AIDO() []ids.AID { return a.aido.Slice() }

// Step processes one message and returns the messages to transmit. Only
// Guess, Affirm, Deny, and Retract messages are meaningful; anything else
// is ignored with a violation trace.
func (a *Machine) Step(m *msg.Message) []*msg.Message {
	switch m.Kind {
	case msg.KindGuess:
		return a.stepGuess(m)
	case msg.KindAffirm:
		return a.stepAffirm(m)
	case msg.KindDeny:
		return a.stepDeny(m)
	case msg.KindRetract:
		return a.stepRetract(m)
	case msg.KindCutProbe:
		return a.stepCutProbe(m)
	case msg.KindProbe:
		// Engine-internal state query (assumption GC); answered from any
		// state without side effects.
		return []*msg.Message{{
			Kind:    msg.KindData,
			From:    a.self.PID(),
			To:      m.From,
			AID:     a.self,
			Payload: a.state,
		}}
	default:
		a.violation("unexpected message kind %s", m.Kind)
		return nil
	}
}

// stepGuess implements Figure 6: answer a request for this AID's terminal
// state, or record the dependency until the state resolves.
func (a *Machine) stepGuess(m *msg.Message) []*msg.Message {
	switch a.state {
	case Cold:
		a.dom.Add(m.IID)
		a.setState(Hot, "first guess")
		return nil
	case Hot:
		a.dom.Add(m.IID)
		return nil
	case Maybe:
		// "Pass the buck": tell the sender to depend on the AIDs that
		// predicate this AID's speculative affirm instead of on us.
		//
		// Deviation from Figure 6, which does not record the sender in
		// DOM: the speculative affirm may later be *retracted* (its
		// interval rolls back — the paper's own Figure 11), after which
		// this AID can still be denied. Without the DOM entry the
		// buck-passed dependent would be unreachable by that denial's
		// rollback fan-out, having committed on a conditional chain
		// whose base was withdrawn. Recording it is harmless in the
		// paper's own cases (on True it receives a redundant empty
		// Replace).
		a.dom.Add(m.IID)
		return []*msg.Message{msg.Replace(a.self, m.IID, a.aido.Slice())}
	case True:
		if a.revocable {
			// True is revocable until the watermark covers the affirmer:
			// keep the dependent reachable by a later retract or deny.
			a.dom.Add(m.IID)
		}
		return []*msg.Message{msg.Replace(a.self, m.IID, nil)}
	case False:
		return []*msg.Message{msg.Rollback(a.self, m.IID)}
	}
	return nil
}

// stepAffirm implements Figure 7: an empty IDO set is a definite affirm
// (→ True); a non-empty one is conditional (→ Maybe). Either way every
// dependent interval is told to replace this AID with the IDO set.
func (a *Machine) stepAffirm(m *msg.Message) []*msg.Message {
	switch a.state {
	case Cold, Hot, Maybe:
		a.aido = sets.NewAIDSet(m.IDO...)
		out := make([]*msg.Message, 0, a.dom.Len())
		for _, b := range a.dom.Slice() {
			out = append(out, msg.Replace(a.self, b, m.IDO))
		}
		if a.aido.Empty() {
			if a.revocable {
				// Retain the affirmer: if its interval is revoked (the
				// premature-commit repair), its Retract must find us.
				a.affirmer = m.IID
			} else {
				a.affirmer = ids.NilInterval
			}
			a.setState(True, "definite affirm by "+m.IID.String())
		} else {
			a.affirmer = m.IID
			a.setState(Maybe, "speculative affirm by "+m.IID.String())
		}
		return out
	case True:
		// Re-affirming a true AID is redundant (the finalize of a
		// speculatively affirming interval re-sends unconditionally).
		return nil
	case False:
		a.violation("affirm of denied AID (conflicting affirm/deny, paper §3: user error)")
		return nil
	}
	return nil
}

// stepDeny implements Figure 8: denies are unconditional; every dependent
// interval is rolled back.
func (a *Machine) stepDeny(m *msg.Message) []*msg.Message {
	switch a.state {
	case Cold, Hot, Maybe:
		out := make([]*msg.Message, 0, a.dom.Len())
		for _, b := range a.dom.Slice() {
			out = append(out, msg.Rollback(a.self, b))
		}
		a.affirmer = ids.NilInterval
		a.aido.Clear()
		a.setState(False, fmt.Sprintf("denied by %s, rollback fan-out to %v", m.IID, a.dom.Slice()))
		return out
	case False:
		// Redundant deny: ignore.
		return nil
	case True:
		if a.revocable {
			// Revocable commit: the affirm that produced True may itself
			// have been premature (an uncovered finalize). The deny wins;
			// dependents that resolved through True are rolled back, and
			// the engine repairs uncovered definite intervals among them.
			out := make([]*msg.Message, 0, a.dom.Len())
			for _, b := range a.dom.Slice() {
				out = append(out, msg.Rollback(a.self, b))
			}
			a.affirmer = ids.NilInterval
			a.aido.Clear()
			a.setState(False, fmt.Sprintf("affirmed assumption revoked by deny from %s (revocable commit)", m.IID))
			return out
		}
		a.violation("deny of affirmed AID (conflicting affirm/deny, paper §3: user error)")
		return nil
	}
	return nil
}

// stepRetract withdraws a speculative affirm whose interval rolled back
// (the unnamed Figure 11 rollback message; DESIGN.md §4.2). The AID
// returns to Hot so re-executed guesses and affirms find it unresolved.
func (a *Machine) stepRetract(m *msg.Message) []*msg.Message {
	// In revocable mode the unconditional affirm behind True can also be
	// withdrawn: the finalize that sent it was an uncovered (revocable)
	// commit whose interval has been rolled back.
	revokedTrue := a.revocable && a.state == True && a.affirmer == m.IID
	if (a.state != Maybe || a.affirmer != m.IID) && !revokedTrue {
		return nil
	}
	a.aido.Clear()
	a.affirmer = ids.NilInterval
	a.setState(Hot, "affirm retracted by rollback of "+m.IID.String())
	// Every dependent may have resolved this assumption through the
	// now-void conditional chain (possibly even discarding it via a
	// stale UDO entry); tell them all to depend on it directly again.
	out := make([]*msg.Message, 0, a.dom.Len())
	for _, b := range a.dom.Slice() {
		out = append(out, msg.Revive(a.self, b))
	}
	return out
}

// stepCutProbe answers a cut-confirmation request (see msg.KindCutProbe):
// a cut is sound while this AID remains conditionally affirmed (a genuine
// ring member) and moot once it is True; a Hot/Cold AID means the chain
// that justified the cut was retracted, so the prober must depend on this
// assumption directly again, and a False one rolls it back.
func (a *Machine) stepCutProbe(m *msg.Message) []*msg.Message {
	switch a.state {
	case Maybe:
		a.dom.Add(m.IID) // reachable by a later retract/deny
		return []*msg.Message{msg.CutAck(a.self, m.IID)}
	case True:
		if a.revocable {
			a.dom.Add(m.IID) // True is revocable: stay reachable
		}
		return []*msg.Message{msg.CutAck(a.self, m.IID)}
	case Cold, Hot:
		a.dom.Add(m.IID)
		if a.state == Cold {
			// The prober is now a dependent, which is exactly what Hot
			// means; stepGuess makes the same transition.
			a.setState(Hot, "cut probe from "+m.IID.String())
		}
		return []*msg.Message{msg.Revive(a.self, m.IID)}
	case False:
		return []*msg.Message{msg.Rollback(a.self, m.IID)}
	}
	return nil
}

func (a *Machine) setState(s State, why string) {
	a.state = s
	a.tracer.Emit(trace.Event{
		Kind:   trace.AIDState,
		PID:    a.self.PID(),
		AID:    a.self,
		Detail: fmt.Sprintf("-> %s (%s)", s, why),
	})
}

func (a *Machine) violation(format string, args ...any) {
	a.tracer.Emit(trace.Event{
		Kind:   trace.Violation,
		PID:    a.self.PID(),
		AID:    a.self,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Run is the vpm process body hosting a Machine: it loops over the
// mailbox, stepping the machine and transmitting its outputs, until the
// process is killed. AID processes never terminate on their own (paper
// §5.2: pending guesses must still be answered after the state becomes
// final); the engine kills them at system shutdown. The assumption's
// identity is the hosting process's PID.
func Run(tracer trace.Tracer) vpm.Body {
	return RunMode(tracer, false)
}

// RunMode is Run with the revocable-commit switch: revocable machines
// back an engine running under the global commit watermark (DESIGN.md
// §12), where True is final only below the stability frontier.
func RunMode(tracer trace.Tracer, revocable bool) vpm.Body {
	return func(p *vpm.Proc) {
		self := ids.AID(p.PID())
		m := NewMachine(self, tracer)
		if revocable {
			m.EnableRevocable()
		}
		for {
			in, err := p.Recv()
			if err != nil {
				if err != mailbox.ErrClosed {
					tracer.Emit(trace.Event{
						Kind:   trace.Violation,
						PID:    self.PID(),
						AID:    self,
						Detail: "aid recv: " + err.Error(),
					})
				}
				return
			}
			for _, out := range m.Step(in) {
				p.Send(out)
			}
		}
	}
}
