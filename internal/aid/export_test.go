package aid

import (
	"reflect"
	"sort"
	"testing"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/trace"
)

func iid(proc uint64, seq uint32) ids.IntervalID {
	return ids.IntervalID{Proc: ids.PID(proc), Seq: seq, Epoch: 1}
}

// TestExportRoundTrip drives a machine into each reachable state, ships
// it through the batch codec, and checks the reconstruction picks up
// exactly where the original left off.
func TestExportRoundTrip(t *testing.T) {
	a := ids.AID(42)
	m := NewMachine(a, trace.Nop)
	m.Step(msg.Guess(ids.PID(7), iid(7, 1), a))
	m.Step(msg.Guess(ids.PID(8), iid(8, 3), a))
	m.Step(msg.Affirm(ids.PID(9), iid(9, 2), a, []ids.AID{5, 6}))
	if m.State() != Maybe {
		t.Fatalf("setup: state %v, want Maybe", m.State())
	}

	batch := EncodeBatch([]Export{m.Export()})
	decoded, err := DecodeBatch(batch)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d exports, want 1", len(decoded))
	}
	got := FromExport(decoded[0], trace.Nop)
	if got.Self() != a || got.State() != Maybe {
		t.Fatalf("reconstructed self=%v state=%v, want %v Maybe", got.Self(), got.State(), a)
	}
	wantDOM := m.DOM()
	gotDOM := got.DOM()
	sortIIDs(wantDOM)
	sortIIDs(gotDOM)
	if !reflect.DeepEqual(gotDOM, wantDOM) {
		t.Fatalf("DOM %v, want %v", gotDOM, wantDOM)
	}
	wantAIDO, gotAIDO := m.AIDO(), got.AIDO()
	sortAIDs(wantAIDO)
	sortAIDs(gotAIDO)
	if !reflect.DeepEqual(gotAIDO, wantAIDO) {
		t.Fatalf("AIDO %v, want %v", gotAIDO, wantAIDO)
	}

	// The affirmer survived the trip: a Retract from the affirming
	// interval must still flip the reconstruction back to Hot.
	got.Step(msg.Retract(ids.PID(9), iid(9, 2), a))
	if got.State() != Hot {
		t.Fatalf("after retract: state %v, want Hot", got.State())
	}
}

// TestExportMerge pins the rank-based merge: the further-progressed
// state wins and the DOM is unioned either way.
func TestExportMerge(t *testing.T) {
	a := ids.AID(42)

	// Cold local machine (the receiver's lazy create) merges a Maybe
	// snapshot: the snapshot wins outright.
	cold := NewMachine(a, trace.Nop)
	snap := Export{
		AID: a, State: Maybe, Affirmer: iid(9, 2),
		DOM:  []ids.IntervalID{iid(7, 1)},
		AIDO: []ids.AID{5},
	}
	cold.Merge(snap)
	if cold.State() != Maybe || len(cold.AIDO()) != 1 {
		t.Fatalf("cold merge: state %v aido %v, want Maybe [5]", cold.State(), cold.AIDO())
	}

	// A machine that progressed past the snapshot keeps its state but
	// still absorbs the snapshot's dependents.
	final := NewMachine(a, trace.Nop)
	final.Step(msg.Guess(ids.PID(8), iid(8, 1), a))
	final.Step(msg.Deny(ids.PID(9), iid(9, 5), a))
	if final.State() != False {
		t.Fatalf("setup: state %v, want False", final.State())
	}
	final.Merge(snap)
	if final.State() != False {
		t.Fatalf("final merge: state %v, want False (rank keeps final)", final.State())
	}
	dom := final.DOM()
	found := false
	for _, b := range dom {
		if b == iid(7, 1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("final merge: DOM %v missing migrated dependent %v", dom, iid(7, 1))
	}
}

// TestDecodeBatchRejectsGarbage pins the defensive decode paths.
func TestDecodeBatchRejectsGarbage(t *testing.T) {
	good := EncodeBatch([]Export{{AID: 1, State: Hot}})
	cases := map[string][]byte{
		"empty":       nil,
		"bad version": {99},
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte(nil), good...), 0),
		"bad state":   {exportVersion, 1, 1, 77},
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func sortIIDs(s []ids.IntervalID) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Proc != s[j].Proc {
			return s[i].Proc < s[j].Proc
		}
		return s[i].Seq < s[j].Seq
	})
}

func sortAIDs(s []ids.AID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
