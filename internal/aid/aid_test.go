package aid

import (
	"testing"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/trace"
)

var (
	testAID = ids.AID(100)
	iidA    = ids.IntervalID{Proc: 1, Seq: 0, Epoch: 1}
	iidB    = ids.IntervalID{Proc: 2, Seq: 3, Epoch: 2}
	iidC    = ids.IntervalID{Proc: 3, Seq: 1, Epoch: 3}
	depY    = ids.AID(200)
	depZ    = ids.AID(201)
)

// drive constructs a machine and feeds it the given messages, returning
// the machine and all emitted messages in order.
func drive(t *testing.T, msgs ...*msg.Message) (*Machine, []*msg.Message) {
	t.Helper()
	m := NewMachine(testAID, trace.Nop)
	var out []*msg.Message
	for _, in := range msgs {
		out = append(out, m.Step(in)...)
	}
	return m, out
}

func guessFrom(iid ids.IntervalID) *msg.Message { return msg.Guess(iid.Proc, iid, testAID) }
func affirmFrom(iid ids.IntervalID, ido ...ids.AID) *msg.Message {
	return msg.Affirm(iid.Proc, iid, testAID, ido)
}
func denyFrom(iid ids.IntervalID) *msg.Message    { return msg.Deny(iid.Proc, iid, testAID) }
func retractFrom(iid ids.IntervalID) *msg.Message { return msg.Retract(iid.Proc, iid, testAID) }

func wantKinds(t *testing.T, out []*msg.Message, kinds ...msg.Kind) {
	t.Helper()
	if len(out) != len(kinds) {
		t.Fatalf("emitted %d messages (%v), want %d", len(out), out, len(kinds))
	}
	for i, k := range kinds {
		if out[i].Kind != k {
			t.Fatalf("message %d kind = %s, want %s (%v)", i, out[i].Kind, k, out)
		}
	}
}

// --- Figure 6: Guess processing in every state ---

func TestGuessColdRecordsAndHeats(t *testing.T) {
	m, out := drive(t, guessFrom(iidA))
	wantKinds(t, out)
	if m.State() != Hot {
		t.Fatalf("state = %s, want Hot", m.State())
	}
	if dom := m.DOM(); len(dom) != 1 || dom[0] != iidA {
		t.Fatalf("DOM = %v, want [%s]", dom, iidA)
	}
}

func TestGuessHotAccumulatesDOM(t *testing.T) {
	m, out := drive(t, guessFrom(iidA), guessFrom(iidB))
	wantKinds(t, out)
	if m.State() != Hot {
		t.Fatalf("state = %s, want Hot", m.State())
	}
	if dom := m.DOM(); len(dom) != 2 {
		t.Fatalf("DOM = %v, want 2 members", dom)
	}
}

func TestGuessHotDuplicateIsIdempotent(t *testing.T) {
	m, _ := drive(t, guessFrom(iidA), guessFrom(iidA))
	if dom := m.DOM(); len(dom) != 1 {
		t.Fatalf("DOM = %v, want 1 member after duplicate guess", dom)
	}
}

func TestGuessMaybePassesTheBuck(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY), // speculative affirm: Maybe, A_IDO={Y}
		guessFrom(iidC),
	)
	if m.State() != Maybe {
		t.Fatalf("state = %s, want Maybe", m.State())
	}
	// First output: Replace to iidA from the affirm; second: Replace to
	// the new guesser iidC carrying A_IDO.
	wantKinds(t, out, msg.KindReplace, msg.KindReplace)
	last := out[len(out)-1]
	if last.IID != iidC {
		t.Fatalf("Replace target = %s, want %s", last.IID, iidC)
	}
	if len(last.IDO) != 1 || last.IDO[0] != depY {
		t.Fatalf("Replace IDO = %v, want [%s]", last.IDO, depY)
	}
	// Deviation from Figure 6: the buck-passed guesser IS recorded in
	// DOM so a retract-then-deny still reaches it (see stepGuess).
	found := false
	for _, d := range m.DOM() {
		if d == iidC {
			found = true
		}
	}
	if !found {
		t.Fatal("Maybe-state guesser missing from DOM (retract-then-deny would strand it)")
	}
}

func TestGuessTrueAnswersReplaceNull(t *testing.T) {
	_, out := drive(t,
		affirmFrom(iidB), // definite affirm: True
		guessFrom(iidC),
	)
	wantKinds(t, out, msg.KindReplace)
	if out[0].IID != iidC || len(out[0].IDO) != 0 {
		t.Fatalf("Replace = %v, want empty-IDO Replace to %s", out[0], iidC)
	}
}

func TestGuessFalseAnswersRollback(t *testing.T) {
	_, out := drive(t,
		denyFrom(iidB),
		guessFrom(iidC),
	)
	wantKinds(t, out, msg.KindRollback)
	if out[0].IID != iidC || out[0].AID != testAID {
		t.Fatalf("Rollback = %v, want rollback of %s for %s", out[0], iidC, testAID)
	}
}

// --- Figure 7: Affirm processing ---

func TestAffirmEmptyIDOGoesTrue(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		guessFrom(iidB),
		affirmFrom(iidC),
	)
	if m.State() != True {
		t.Fatalf("state = %s, want True", m.State())
	}
	// One Replace-with-null per DOM member.
	wantKinds(t, out, msg.KindReplace, msg.KindReplace)
	for _, o := range out {
		if len(o.IDO) != 0 {
			t.Fatalf("Replace IDO = %v, want empty", o.IDO)
		}
	}
}

func TestAffirmNonEmptyIDOGoesMaybe(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY, depZ),
	)
	if m.State() != Maybe {
		t.Fatalf("state = %s, want Maybe", m.State())
	}
	wantKinds(t, out, msg.KindReplace)
	if got := out[0].IDO; len(got) != 2 || got[0] != depY || got[1] != depZ {
		t.Fatalf("Replace IDO = %v, want [%s %s]", got, depY, depZ)
	}
	if aido := m.AIDO(); len(aido) != 2 {
		t.Fatalf("A_IDO = %v, want 2 members", aido)
	}
}

func TestAffirmFromColdDirectlyTrue(t *testing.T) {
	m, out := drive(t, affirmFrom(iidA))
	if m.State() != True {
		t.Fatalf("state = %s, want True", m.State())
	}
	wantKinds(t, out) // empty DOM: nothing to send
}

func TestAffirmMaybeUpgradedToTrue(t *testing.T) {
	// A speculative affirm followed by the affirming interval's finalize
	// (unconditional re-affirm) lands in True and re-notifies DOM.
	m, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY),
		affirmFrom(iidB),
	)
	if m.State() != True {
		t.Fatalf("state = %s, want True", m.State())
	}
	wantKinds(t, out, msg.KindReplace, msg.KindReplace)
	if last := out[len(out)-1]; len(last.IDO) != 0 {
		t.Fatalf("final Replace IDO = %v, want empty", last.IDO)
	}
}

func TestAffirmAfterTrueIsIgnored(t *testing.T) {
	m, out := drive(t,
		affirmFrom(iidA),
		affirmFrom(iidB),
	)
	if m.State() != True {
		t.Fatalf("state = %s, want True", m.State())
	}
	wantKinds(t, out)
}

func TestAffirmAfterFalseIsViolation(t *testing.T) {
	rec := trace.NewRecorder()
	m := NewMachine(testAID, rec)
	m.Step(denyFrom(iidA))
	out := m.Step(affirmFrom(iidB))
	if len(out) != 0 {
		t.Fatalf("emitted %v, want nothing", out)
	}
	if m.State() != False {
		t.Fatalf("state = %s, want False", m.State())
	}
	if rec.Count(trace.Violation) == 0 {
		t.Fatal("conflicting affirm after deny not traced as violation")
	}
}

// --- Figure 8: Deny processing ---

func TestDenyRollsBackDOM(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		guessFrom(iidB),
		denyFrom(iidC),
	)
	if m.State() != False {
		t.Fatalf("state = %s, want False", m.State())
	}
	wantKinds(t, out, msg.KindRollback, msg.KindRollback)
	if out[0].IID != iidA || out[1].IID != iidB {
		t.Fatalf("rollback targets %v, want [%s %s]", out, iidA, iidB)
	}
}

func TestDenyMaybeRollsBackDOM(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY),
		denyFrom(iidC),
	)
	if m.State() != False {
		t.Fatalf("state = %s, want False", m.State())
	}
	// Replace from the affirm, then Rollback from the deny: the retained
	// DOM member is still notified (the interval that replaced this AID
	// with A_IDO must still be undone — it guessed a falsehood).
	wantKinds(t, out, msg.KindReplace, msg.KindRollback)
}

func TestDenyAfterFalseIsRedundant(t *testing.T) {
	m, out := drive(t, denyFrom(iidA), denyFrom(iidB))
	if m.State() != False {
		t.Fatalf("state = %s, want False", m.State())
	}
	wantKinds(t, out)
}

func TestDenyAfterTrueIsViolation(t *testing.T) {
	rec := trace.NewRecorder()
	m := NewMachine(testAID, rec)
	m.Step(affirmFrom(iidA))
	m.Step(denyFrom(iidB))
	if m.State() != True {
		t.Fatalf("state = %s, want True (deny of affirmed AID ignored)", m.State())
	}
	if rec.Count(trace.Violation) == 0 {
		t.Fatal("conflicting deny after affirm not traced as violation")
	}
}

// --- Retract (DESIGN.md §4.2) ---

func TestRetractReturnsMaybeToHot(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY),
		retractFrom(iidB),
	)
	if m.State() != Hot {
		t.Fatalf("state = %s, want Hot after retract", m.State())
	}
	if aido := m.AIDO(); len(aido) != 0 {
		t.Fatalf("A_IDO = %v, want empty after retract", aido)
	}
	// The retract revives the dependency in every DOM member.
	wantKinds(t, out, msg.KindReplace, msg.KindRevive)
	last := out[len(out)-1]
	if last.IID != iidA || last.AID != testAID {
		t.Fatalf("revive = %v, want revive of %s in %s", last, testAID, iidA)
	}
}

func TestRetractFromWrongIntervalIgnored(t *testing.T) {
	m, _ := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY),
		retractFrom(iidC), // not the affirmer
	)
	if m.State() != Maybe {
		t.Fatalf("state = %s, want Maybe (stale retract ignored)", m.State())
	}
}

func TestRetractInNonMaybeStatesIgnored(t *testing.T) {
	for _, setup := range []struct {
		name string
		msgs []*msg.Message
		want State
	}{
		{"cold", nil, Cold},
		{"hot", []*msg.Message{guessFrom(iidA)}, Hot},
		{"true", []*msg.Message{affirmFrom(iidB)}, True},
		{"false", []*msg.Message{denyFrom(iidB)}, False},
	} {
		t.Run(setup.name, func(t *testing.T) {
			m, _ := drive(t, append(setup.msgs, retractFrom(iidB))...)
			if m.State() != setup.want {
				t.Fatalf("state = %s, want %s", m.State(), setup.want)
			}
		})
	}
}

// --- Re-affirm after retract: a rolled-back speculative affirmer's
// re-execution can decide the assumption again ---

func TestReAffirmAfterRetract(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY),
		retractFrom(iidB),
		affirmFrom(iidC), // definite this time
	)
	if m.State() != True {
		t.Fatalf("state = %s, want True", m.State())
	}
	// Replace (speculative affirm), Revive (the retract reclaims every
	// dependent), then Replace-null (definite affirm).
	wantKinds(t, out, msg.KindReplace, msg.KindRevive, msg.KindReplace)
}

func TestDenyAfterRetract(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY),
		retractFrom(iidB),
		denyFrom(iidC),
	)
	if m.State() != False {
		t.Fatalf("state = %s, want False", m.State())
	}
	wantKinds(t, out, msg.KindReplace, msg.KindRevive, msg.KindRollback)
}

// --- State stringing and finality (API surface) ---

func TestStateProperties(t *testing.T) {
	for _, tt := range []struct {
		s     State
		str   string
		final bool
	}{
		{Cold, "Cold", false},
		{Hot, "Hot", false},
		{Maybe, "Maybe", false},
		{True, "True", true},
		{False, "False", true},
	} {
		if tt.s.String() != tt.str {
			t.Errorf("String(%d) = %s, want %s", tt.s, tt.s.String(), tt.str)
		}
		if tt.s.Final() != tt.final {
			t.Errorf("Final(%s) = %v, want %v", tt.str, tt.s.Final(), tt.final)
		}
	}
}

// TestUnknownMessageKindIsViolation: the machine survives junk.
func TestUnknownMessageKindIsViolation(t *testing.T) {
	rec := trace.NewRecorder()
	m := NewMachine(testAID, rec)
	out := m.Step(msg.Data(iidA.Proc, testAID.PID(), iidA, nil, "junk"))
	if len(out) != 0 {
		t.Fatalf("emitted %v for junk", out)
	}
	if rec.Count(trace.Violation) != 1 {
		t.Fatal("junk message not traced as violation")
	}
}

// --- Probe (engine-internal GC query) ---

func TestProbeReportsStateWithoutSideEffects(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		msg.Probe(iidB.Proc, testAID),
	)
	if len(out) != 1 || out[0].Kind != msg.KindData {
		t.Fatalf("probe reply = %v, want one Data message", out)
	}
	if st, ok := out[0].Payload.(State); !ok || st != Hot {
		t.Fatalf("probe payload = %v, want Hot", out[0].Payload)
	}
	if m.State() != Hot {
		t.Fatalf("probe mutated state to %s", m.State())
	}
	if len(m.DOM()) != 1 {
		t.Fatalf("probe mutated DOM: %v", m.DOM())
	}
}

func TestProbeInEveryState(t *testing.T) {
	for _, tt := range []struct {
		name  string
		setup []*msg.Message
		want  State
	}{
		{"cold", nil, Cold},
		{"maybe", []*msg.Message{guessFrom(iidA), affirmFrom(iidB, depY)}, Maybe},
		{"true", []*msg.Message{affirmFrom(iidB)}, True},
		{"false", []*msg.Message{denyFrom(iidB)}, False},
	} {
		t.Run(tt.name, func(t *testing.T) {
			m := NewMachine(testAID, trace.Nop)
			for _, in := range tt.setup {
				m.Step(in)
			}
			out := m.Step(msg.Probe(iidC.Proc, testAID))
			if len(out) != 1 {
				t.Fatalf("out = %v", out)
			}
			if st := out[0].Payload.(State); st != tt.want {
				t.Fatalf("probe payload = %v, want %v", st, tt.want)
			}
		})
	}
}

// --- CutProbe (cycle-cut confirmation) ---

func cutProbeFrom(iid ids.IntervalID) *msg.Message {
	return msg.CutProbe(iid.Proc, iid, testAID)
}

func TestCutProbeAckedWhileMaybe(t *testing.T) {
	m, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY),
		cutProbeFrom(iidC),
	)
	last := out[len(out)-1]
	if last.Kind != msg.KindCutAck || last.IID != iidC {
		t.Fatalf("reply = %v, want CutAck to %s", last, iidC)
	}
	// The prober joins DOM so a later retract/deny still reaches it.
	found := false
	for _, d := range m.DOM() {
		if d == iidC {
			found = true
		}
	}
	if !found {
		t.Fatal("cut prober not recorded in DOM")
	}
}

func TestCutProbeAckedWhenTrue(t *testing.T) {
	_, out := drive(t,
		affirmFrom(iidB),
		cutProbeFrom(iidC),
	)
	last := out[len(out)-1]
	if last.Kind != msg.KindCutAck {
		t.Fatalf("reply = %v, want CutAck (cut of a True AID is moot)", last)
	}
}

func TestCutProbeRevivedWhenRetracted(t *testing.T) {
	_, out := drive(t,
		guessFrom(iidA),
		affirmFrom(iidB, depY),
		retractFrom(iidB), // Maybe -> Hot: the chain justifying any cut is void
		cutProbeFrom(iidC),
	)
	last := out[len(out)-1]
	if last.Kind != msg.KindRevive || last.IID != iidC {
		t.Fatalf("reply = %v, want Revive to %s", last, iidC)
	}
}

func TestCutProbeRolledBackWhenFalse(t *testing.T) {
	_, out := drive(t,
		denyFrom(iidB),
		cutProbeFrom(iidC),
	)
	last := out[len(out)-1]
	if last.Kind != msg.KindRollback {
		t.Fatalf("reply = %v, want Rollback", last)
	}
}
