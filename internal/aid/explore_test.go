package aid

// Exhaustive exploration of the AID state machine. Because Machine.Step
// is pure, the entire reachable state graph under a small message
// alphabet can be enumerated by breadth-first search, checking global
// invariants at every state and transition. This complements the
// per-figure unit tests: those pin down the transitions the paper draws,
// the explorer proves no *reachable* state — in any order, including
// orders the paper never discusses — breaks the machine's contracts.

import (
	"fmt"
	"sort"
	"testing"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/trace"
)

// The exploration universe: two distinct guessing/affirming intervals and
// two condition AIDs. Two of each suffices to distinguish "same" from
// "different" in every guard the machine has (affirmer matching, DOM
// membership, condition sets); larger universes add symmetric copies of
// the same states.
var (
	expIIDs = []ids.IntervalID{
		{Proc: 11, Seq: 1, Epoch: 1},
		{Proc: 12, Seq: 1, Epoch: 1},
	}
	expConds = []ids.AID{301, 302}
)

// expAlphabet enumerates every input message shape over the universe.
func expAlphabet(self ids.AID) []*msg.Message {
	var in []*msg.Message
	for _, iid := range expIIDs {
		in = append(in,
			msg.Guess(iid.Proc, iid, self),
			msg.Deny(iid.Proc, iid, self),
			msg.Retract(iid.Proc, iid, self),
			msg.CutProbe(iid.Proc, iid, self),
		)
		// Affirm with every subset of the condition universe, including
		// the empty (definite) affirm.
		for mask := 0; mask < 1<<len(expConds); mask++ {
			var ido []ids.AID
			for j, c := range expConds {
				if mask&(1<<j) != 0 {
					ido = append(ido, c)
				}
			}
			in = append(in, msg.Affirm(iid.Proc, iid, self, ido))
		}
	}
	in = append(in, &msg.Message{Kind: msg.KindProbe, From: 99, To: self.PID(), AID: self})
	return in
}

// fingerprint canonicalizes a machine state for the visited set.
func fingerprint(m *Machine) string {
	dom := m.DOM()
	sort.Slice(dom, func(i, j int) bool { return dom[i].Proc < dom[j].Proc })
	aido := m.AIDO()
	sort.Slice(aido, func(i, j int) bool { return aido[i] < aido[j] })
	return fmt.Sprintf("%s|%v|%v|%v", m.State(), dom, aido, m.affirmer)
}

// replay rebuilds a machine by feeding a message path from Cold.
func replay(self ids.AID, path []*msg.Message) *Machine {
	m := NewMachine(self, trace.Nop)
	for _, in := range path {
		m.Step(in)
	}
	return m
}

// checkMachineInvariants validates state-shape invariants that must hold
// in every reachable state.
func checkMachineInvariants(t *testing.T, m *Machine, path []*msg.Message) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("after %v: "+format, append([]any{pathString(path)}, args...)...)
	}
	switch m.State() {
	case Maybe:
		if len(m.AIDO()) == 0 {
			fail("Maybe with empty A_IDO")
		}
		if m.affirmer == ids.NilInterval {
			fail("Maybe without an affirmer")
		}
	case Cold, Hot, True, False:
		if len(m.AIDO()) != 0 {
			fail("%s carries conditions %v", m.State(), m.AIDO())
		}
		if m.affirmer != ids.NilInterval {
			fail("%s has affirmer %v", m.State(), m.affirmer)
		}
	}
	if m.State() == Cold && len(m.DOM()) != 0 {
		fail("Cold with non-empty DOM %v", m.DOM())
	}
}

// checkStepContract validates the output of one transition.
func checkStepContract(t *testing.T, before State, domBefore int, in *msg.Message, m *Machine, out []*msg.Message, path []*msg.Message) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("step %s after %v: "+format,
			append([]any{in, pathString(path)}, args...)...)
	}

	// Terminal absorption: True and False are never left.
	if before == True && m.State() != True {
		fail("left True for %s", m.State())
	}
	if before == False && m.State() != False {
		fail("left False for %s", m.State())
	}
	// DOM is monotone: the machine only accumulates dependents.
	if len(m.DOM()) < domBefore {
		fail("DOM shrank %d -> %d", domBefore, len(m.DOM()))
	}

	for _, o := range out {
		switch o.Kind {
		case msg.KindReplace, msg.KindRollback, msg.KindRevive, msg.KindCutAck:
			if o.AID != m.Self() {
				fail("output %s names foreign AID %v", o, o.AID)
			}
			if o.To != o.IID.Proc {
				fail("output %s not addressed to its interval's process", o)
			}
		case msg.KindData:
			if in.Kind != msg.KindProbe {
				fail("Data emitted for non-Probe input")
			}
		default:
			fail("unexpected output kind %s", o.Kind)
		}
		// A rollback is only ever justified by falsity.
		if o.Kind == msg.KindRollback && m.State() != False {
			fail("Rollback emitted in state %s", m.State())
		}
	}

	// Deny fans rollbacks out to every dependent known at denial time.
	if in.Kind == msg.KindDeny && before != False && before != True {
		if len(out) != domBefore {
			fail("deny fan-out %d, DOM had %d", len(out), domBefore)
		}
	}
	// Probe answers exactly one Data message from any state.
	if in.Kind == msg.KindProbe {
		if len(out) != 1 || out[0].Kind != msg.KindData {
			fail("probe answered %v", out)
		}
		if out[0].Payload != m.State() {
			fail("probe reported %v in state %s", out[0].Payload, m.State())
		}
	}
}

func pathString(path []*msg.Message) string {
	s := make([]string, len(path))
	for i, m := range path {
		s[i] = m.Kind.String()
	}
	return fmt.Sprint(s)
}

// TestExhaustiveStateGraph walks the full reachable state graph of the
// machine under the two-interval/two-condition alphabet, checking every
// state and transition. It also proves the graph is closed (finite) and
// that every (state × input-kind) pair the paper's figures describe is
// actually reached.
func TestExhaustiveStateGraph(t *testing.T) {
	self := ids.AID(300)
	alphabet := expAlphabet(self)

	type node struct {
		path []*msg.Message
	}
	start := NewMachine(self, trace.Nop)
	visited := map[string]bool{fingerprint(start): true}
	queue := []node{{}}
	covered := map[string]bool{}
	transitions := 0

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, in := range alphabet {
			m := replay(self, cur.path)
			before := m.State()
			domBefore := len(m.DOM())

			out := m.Step(in)
			transitions++
			covered[fmt.Sprintf("%s/%s", before, in.Kind)] = true

			path := append(append([]*msg.Message{}, cur.path...), in)
			checkMachineInvariants(t, m, path)
			checkStepContract(t, before, domBefore, in, m, out, path)

			// Determinism: replaying the same path yields the same state.
			if fp, fp2 := fingerprint(m), fingerprint(replay(self, path)); fp != fp2 {
				t.Fatalf("nondeterministic step: %s vs %s after %v", fp, fp2, pathString(path))
			}

			fp := fingerprint(m)
			if !visited[fp] {
				visited[fp] = true
				queue = append(queue, node{path: path})
			}
		}
		if len(visited) > 5000 {
			t.Fatalf("state graph not closing: %d states", len(visited))
		}
	}

	t.Logf("explored %d states, %d transitions", len(visited), transitions)

	// Every (state × kind) combination of the paper's figures must have
	// been exercised.
	for _, st := range []State{Cold, Hot, Maybe, True, False} {
		for _, k := range []msg.Kind{msg.KindGuess, msg.KindAffirm, msg.KindDeny, msg.KindRetract, msg.KindCutProbe, msg.KindProbe} {
			if !covered[fmt.Sprintf("%s/%s", st, k)] {
				t.Errorf("(state=%s, input=%s) unreachable in exploration", st, k)
			}
		}
	}
}

// TestExplorationReachesAllStates double-checks the five truth values are
// all reachable — a guard against the explorer silently exploring a
// degenerate slice of the graph.
func TestExplorationReachesAllStates(t *testing.T) {
	self := ids.AID(300)
	alphabet := expAlphabet(self)
	reached := map[State]bool{Cold: true}
	visited := map[string]bool{}
	var walk func(path []*msg.Message, depth int)
	walk = func(path []*msg.Message, depth int) {
		if depth == 0 {
			return
		}
		for _, in := range alphabet {
			m := replay(self, append(append([]*msg.Message{}, path...), in))
			reached[m.State()] = true
			fp := fingerprint(m)
			if visited[fp] {
				continue
			}
			visited[fp] = true
			walk(append(append([]*msg.Message{}, path...), in), depth-1)
		}
	}
	walk(nil, 4)
	for _, st := range []State{Cold, Hot, Maybe, True, False} {
		if !reached[st] {
			t.Errorf("state %s never reached", st)
		}
	}
}
