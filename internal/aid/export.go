// Export is the portable snapshot of one AID machine, shipped between
// nodes when ring ownership moves (DESIGN.md §13): live handoff sends a
// batch over the transport's transfer frame, and the durable layer
// journals the same encoding as recAIDExport records so a dead owner's
// successor can adopt its shard from the WAL.

package aid

import (
	"encoding/binary"
	"fmt"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/sets"
	"github.com/hope-dist/hope/internal/trace"
)

// Export captures everything a successor needs to continue adjudicating
// an assumption: the truth value, the affirmer whose Retract must still
// be honoured, the conditional-affirm set, the revocable-commit mode,
// and the dependent intervals a later deny must reach.
type Export struct {
	AID       ids.AID
	State     State
	Affirmer  ids.IntervalID
	Revocable bool
	DOM       []ids.IntervalID
	AIDO      []ids.AID
}

// Export snapshots the machine.
func (a *Machine) Export() Export {
	return Export{
		AID:       a.self,
		State:     a.state,
		Affirmer:  a.affirmer,
		Revocable: a.revocable,
		DOM:       a.dom.Slice(),
		AIDO:      a.aido.Slice(),
	}
}

// FromExport reconstructs a machine from a snapshot.
func FromExport(e Export, tracer trace.Tracer) *Machine {
	m := NewMachine(e.AID, tracer)
	m.state = e.State
	m.affirmer = e.Affirmer
	m.revocable = e.Revocable
	m.dom = sets.NewIntervalSet(e.DOM...)
	m.aido = sets.NewAIDSet(e.AIDO...)
	return m
}

// stateRank orders states by how much adjudication they embody, so a
// merge of two divergent snapshots keeps the further-progressed one.
func stateRank(s State) int {
	switch s {
	case Cold:
		return 0
	case Hot:
		return 1
	case Maybe:
		return 2
	case True, False:
		return 3
	}
	return 0
}

// Merge folds snapshot e into the machine. Two snapshots of the same
// AID can disagree when a live transfer races the receiver's lazy
// Cold-create (or a WAL adoption): the further-progressed state wins —
// it embodies adjudications the other has not seen — and the DOM is
// always unioned, because a dependent registered on either side must
// stay reachable by a later deny's rollback fan-out.
func (a *Machine) Merge(e Export) {
	for _, b := range e.DOM {
		a.dom.Add(b)
	}
	if stateRank(e.State) <= stateRank(a.state) {
		return
	}
	a.affirmer = e.Affirmer
	a.aido = sets.NewAIDSet(e.AIDO...)
	if e.Revocable {
		a.revocable = true
	}
	a.setState(e.State, "merged migrated snapshot")
}

// exportVersion is the first byte of every encoded export batch; bump on
// layout change so mixed-version handoffs fail loudly.
const exportVersion = 1

// maxExportSet bounds decoded set sizes so a corrupt count cannot force
// a huge allocation (the WAL adoption path reads foreign files).
const maxExportSet = 1 << 20

// AppendExport appends e's encoding to buf:
//
//	aid       uvarint
//	state     uint8
//	revocable uint8
//	affirmer  proc uvarint, seq uvarint, epoch uvarint
//	dom       count uvarint, then (proc, seq, epoch) uvarints each
//	aido      count uvarint, then count uvarints
func AppendExport(buf []byte, e Export) []byte {
	buf = binary.AppendUvarint(buf, uint64(e.AID))
	buf = append(buf, byte(e.State))
	rev := byte(0)
	if e.Revocable {
		rev = 1
	}
	buf = append(buf, rev)
	buf = appendInterval(buf, e.Affirmer)
	buf = binary.AppendUvarint(buf, uint64(len(e.DOM)))
	for _, iid := range e.DOM {
		buf = appendInterval(buf, iid)
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.AIDO)))
	for _, x := range e.AIDO {
		buf = binary.AppendUvarint(buf, uint64(x))
	}
	return buf
}

func appendInterval(buf []byte, iid ids.IntervalID) []byte {
	buf = binary.AppendUvarint(buf, uint64(iid.Proc))
	buf = binary.AppendUvarint(buf, uint64(iid.Seq))
	return binary.AppendUvarint(buf, uint64(iid.Epoch))
}

// EncodeBatch renders a set of exports as one transfer payload (or WAL
// blob): version byte, count uvarint, then each export back to back.
func EncodeBatch(exports []Export) []byte {
	buf := make([]byte, 0, 16+32*len(exports))
	buf = append(buf, exportVersion)
	buf = binary.AppendUvarint(buf, uint64(len(exports)))
	for _, e := range exports {
		buf = AppendExport(buf, e)
	}
	return buf
}

// DecodeBatch parses a batch produced by EncodeBatch. Trailing bytes are
// an error. Decoding never panics on malformed input and never
// allocates more than the declared limits.
func DecodeBatch(data []byte) ([]Export, error) {
	d := exportDecoder{buf: data}
	ver, err := d.byte()
	if err != nil {
		return nil, err
	}
	if ver != exportVersion {
		return nil, fmt.Errorf("aid: decode export: version %d, want %d", ver, exportVersion)
	}
	count, err := d.uv()
	if err != nil {
		return nil, err
	}
	if count > maxExportSet {
		return nil, fmt.Errorf("aid: decode export: batch of %d exceeds limit %d", count, maxExportSet)
	}
	exports := make([]Export, 0, count)
	for i := uint64(0); i < count; i++ {
		e, err := d.export()
		if err != nil {
			return nil, err
		}
		exports = append(exports, e)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("aid: decode export: %d trailing bytes", len(d.buf))
	}
	return exports, nil
}

// exportDecoder is a bounds-checked cursor over an encoded batch.
type exportDecoder struct {
	buf []byte
}

func (d *exportDecoder) byte() (byte, error) {
	if len(d.buf) == 0 {
		return 0, fmt.Errorf("aid: decode export: truncated")
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *exportDecoder) uv() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("aid: decode export: bad uvarint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *exportDecoder) interval() (ids.IntervalID, error) {
	proc, err := d.uv()
	if err != nil {
		return ids.IntervalID{}, err
	}
	seq, err := d.uv()
	if err != nil {
		return ids.IntervalID{}, err
	}
	if seq > 0xFFFFFFFF {
		return ids.IntervalID{}, fmt.Errorf("aid: decode export: interval seq %d overflows uint32", seq)
	}
	epoch, err := d.uv()
	if err != nil {
		return ids.IntervalID{}, err
	}
	if epoch > 0xFFFFFFFF {
		return ids.IntervalID{}, fmt.Errorf("aid: decode export: interval epoch %d overflows uint32", epoch)
	}
	return ids.IntervalID{Proc: ids.PID(proc), Seq: uint32(seq), Epoch: uint32(epoch)}, nil
}

func (d *exportDecoder) export() (Export, error) {
	var e Export
	aidV, err := d.uv()
	if err != nil {
		return e, err
	}
	e.AID = ids.AID(aidV)
	st, err := d.byte()
	if err != nil {
		return e, err
	}
	e.State = State(st)
	if e.State < Cold || e.State > False {
		return e, fmt.Errorf("aid: decode export: invalid state %d", st)
	}
	rev, err := d.byte()
	if err != nil {
		return e, err
	}
	if rev > 1 {
		return e, fmt.Errorf("aid: decode export: bad revocable flag %d", rev)
	}
	e.Revocable = rev == 1
	if e.Affirmer, err = d.interval(); err != nil {
		return e, err
	}
	domN, err := d.uv()
	if err != nil {
		return e, err
	}
	if domN > maxExportSet {
		return e, fmt.Errorf("aid: decode export: DOM of %d exceeds limit %d", domN, maxExportSet)
	}
	if domN > 0 {
		e.DOM = make([]ids.IntervalID, domN)
		for i := range e.DOM {
			if e.DOM[i], err = d.interval(); err != nil {
				return e, err
			}
		}
	}
	aidoN, err := d.uv()
	if err != nil {
		return e, err
	}
	if aidoN > maxExportSet {
		return e, fmt.Errorf("aid: decode export: AIDO of %d exceeds limit %d", aidoN, maxExportSet)
	}
	if aidoN > 0 {
		e.AIDO = make([]ids.AID, aidoN)
		for i := range e.AIDO {
			v, err := d.uv()
			if err != nil {
				return e, err
			}
			e.AIDO[i] = ids.AID(v)
		}
	}
	return e, nil
}
