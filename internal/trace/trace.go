// Package trace provides structured event tracing for the HOPE runtime.
// The theorem-validation tests use a Recorder to observe primitive calls,
// AID state transitions, finalizations, and rollbacks; cmd/hopetrace uses
// a Writer to print annotated message flows (the executable counterpart
// of the paper's Figures 12–14).
package trace

import (
	"fmt"
	"io"
	"sync"

	"github.com/hope-dist/hope/internal/ids"
)

// Kind enumerates traced event kinds.
type Kind int

const (
	// Primitive records a user call to a HOPE primitive.
	Primitive Kind = iota + 1
	// AIDState records an AID process state transition.
	AIDState
	// Finalize records an interval becoming definite.
	Finalize
	// Rollback records an interval being rolled back.
	Rollback
	// Restart records a process body re-execution beginning.
	Restart
	// Terminate records a process terminated by rollback of its root.
	Terminate
	// Violation records a protocol violation (e.g. affirm of a denied
	// AID), which the paper marks "abort — user error".
	Violation
	// Info records free-form runtime detail.
	Info
	// Transport records transport-level events — connections established
	// or lost, reconnect attempts, resent frames (internal/wire).
	Transport
	// Fault records the failure model acting: a deliberately injected
	// failure — a dropped, delayed, duplicated, or corrupted frame, a
	// partition opening or healing, a severed connection
	// (internal/faultwire) — or the runtime's response to a diagnosed
	// one — a peer declared dead by the wire failure detector, an
	// assumption auto-denied by the liveness layer. Chaos runs replay a
	// seed by comparing these events; in a healthy, fault-free run none
	// of them occur.
	Fault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Primitive:
		return "prim"
	case AIDState:
		return "aid"
	case Finalize:
		return "finalize"
	case Rollback:
		return "rollback"
	case Restart:
		return "restart"
	case Terminate:
		return "terminate"
	case Violation:
		return "violation"
	case Info:
		return "info"
	case Transport:
		return "transport"
	case Fault:
		return "fault"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one traced occurrence.
type Event struct {
	Kind     Kind
	PID      ids.PID        // process where the event happened
	AID      ids.AID        // subject assumption, if any
	Interval ids.IntervalID // subject interval, if any
	Detail   string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := fmt.Sprintf("[%s] %s", e.Kind, e.PID)
	if e.Interval.Valid() {
		s += " " + e.Interval.String()
	}
	if e.AID.Valid() {
		s += " " + e.AID.String()
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer consumes events. Implementations must be safe for concurrent
// use; the runtime emits from many goroutines.
type Tracer interface {
	Emit(Event)
}

// Nop discards all events.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Emit(Event) {}

// Recorder accumulates events in memory. An uncapped Recorder keeps
// everything — right for tests that assert on a whole run, wrong for a
// long-running node, where it is an unbounded leak; construct those
// with NewRecorderCap, which retains only the most recent events in a
// fixed ring.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	cap    int    // >0: ring capacity; 0: unbounded
	start  int    // ring head when len(events) == cap
	total  uint64 // events ever emitted, including evicted ones
}

// NewRecorder returns an empty unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRecorderCap returns a recorder that retains at most cap events,
// evicting the oldest as new ones arrive. cap <= 0 means unbounded.
func NewRecorderCap(cap int) *Recorder {
	if cap < 0 {
		cap = 0
	}
	return &Recorder{cap: cap}
}

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.total++
	if r.cap > 0 && len(r.events) == r.cap {
		r.events[r.start] = e
		r.start++
		if r.start == r.cap {
			r.start = 0
		}
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

// Total returns the number of events ever emitted, including any the
// ring has evicted.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events the ring has evicted.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.events))
}

// Events returns a snapshot of the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	return append(out, r.events[:r.start]...)
}

// Filter returns retained events of the given kind, oldest first.
func (r *Recorder) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many retained events are of kind k.
func (r *Recorder) Count(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Writer prints each event to an io.Writer as it arrives.
type Writer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriter returns a tracer printing to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Emit implements Tracer.
func (t *Writer) Emit(e Event) {
	t.mu.Lock()
	fmt.Fprintln(t.w, e.String())
	t.mu.Unlock()
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}
