package trace

import (
	"strings"
	"sync"
	"testing"

	"github.com/hope-dist/hope/internal/ids"
)

func TestRecorderCollectsAndFilters(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: Primitive, PID: 1, Detail: "guess"})
	r.Emit(Event{Kind: Rollback, PID: 1})
	r.Emit(Event{Kind: Primitive, PID: 2, Detail: "affirm"})

	if got := len(r.Events()); got != 3 {
		t.Fatalf("events = %d", got)
	}
	if got := r.Count(Primitive); got != 2 {
		t.Fatalf("Count(Primitive) = %d", got)
	}
	prims := r.Filter(Primitive)
	if len(prims) != 2 || prims[0].Detail != "guess" {
		t.Fatalf("Filter = %v", prims)
	}
	if got := r.Count(Finalize); got != 0 {
		t.Fatalf("Count(Finalize) = %d", got)
	}
}

func TestRecorderEventsIsSnapshot(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: Info})
	snap := r.Events()
	r.Emit(Event{Kind: Info})
	if len(snap) != 1 {
		t.Fatal("snapshot grew after later emit")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Kind: Info})
			}
		}()
	}
	wg.Wait()
	if got := r.Count(Info); got != 800 {
		t.Fatalf("count = %d, want 800", got)
	}
}

func TestWriterFormatsEvents(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	w := NewWriter(syncWriter{&mu, &sb})
	w.Emit(Event{
		Kind:     Rollback,
		PID:      ids.PID(4),
		AID:      ids.AID(7),
		Interval: ids.IntervalID{Proc: 4, Seq: 1, Epoch: 2},
		Detail:   "because",
	})
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	for _, frag := range []string{"[rollback]", "pid:4", "aid:7", "iid:4/1.2", "because"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output %q missing %q", out, frag)
		}
	}
}

type syncWriter struct {
	mu *sync.Mutex
	sb *strings.Builder
}

func (w syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	m := Multi{a, b}
	m.Emit(Event{Kind: Finalize})
	if a.Count(Finalize) != 1 || b.Count(Finalize) != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestNopDiscards(t *testing.T) {
	Nop.Emit(Event{Kind: Violation}) // must not panic
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Primitive: "prim",
		AIDState:  "aid",
		Finalize:  "finalize",
		Rollback:  "rollback",
		Restart:   "restart",
		Terminate: "terminate",
		Violation: "violation",
		Info:      "info",
		Transport: "transport",
		Fault:     "fault",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), s)
		}
	}
}

func TestRecorderCapRingBuffer(t *testing.T) {
	r := NewRecorderCap(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: Info, PID: ids.PID(i)})
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	// Oldest first, and only the most recent four survive.
	for i, e := range events {
		if want := ids.PID(6 + i); e.PID != want {
			t.Fatalf("events[%d].PID = %v, want %v", i, e.PID, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	if r.Count(Info) != 4 {
		t.Fatalf("Count = %d, want 4 (retained only)", r.Count(Info))
	}
}

func TestRecorderCapFilterWrap(t *testing.T) {
	r := NewRecorderCap(3)
	kinds := []Kind{Info, Rollback, Info, Finalize, Rollback}
	for i, k := range kinds {
		r.Emit(Event{Kind: k, PID: ids.PID(i)})
	}
	// Ring now holds events 2,3,4 (Info, Finalize, Rollback).
	got := r.Filter(Rollback)
	if len(got) != 1 || got[0].PID != 4 {
		t.Fatalf("Filter(Rollback) = %v, want the PID-4 event only", got)
	}
}

func TestRecorderCapZeroMeansUnbounded(t *testing.T) {
	r := NewRecorderCap(0)
	for i := 0; i < 100; i++ {
		r.Emit(Event{Kind: Info})
	}
	if len(r.Events()) != 100 || r.Dropped() != 0 {
		t.Fatalf("cap 0 should be unbounded: kept %d, dropped %d", len(r.Events()), r.Dropped())
	}
}

func TestRecorderCapConcurrent(t *testing.T) {
	r := NewRecorderCap(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Kind: Info})
			}
		}()
	}
	wg.Wait()
	if got := len(r.Events()); got != 16 {
		t.Fatalf("retained %d, want 16", got)
	}
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
}
