package replica

import (
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/core"
	idpkg "github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/netsim"
)

const settleTimeout = 20 * time.Second

// deploy spawns a primary (site 0) and one backup (site 1) with the given
// local/remote latencies. The client created later should be placed at
// site 1, colocated with the backup.
func deploy(t *testing.T, local, remote time.Duration) (*core.Engine, Client, *netsim.Sites) {
	t.Helper()
	sites := netsim.NewSites(local, remote)
	eng := core.NewEngine(core.Config{Transport: netsim.New(sites)})
	t.Cleanup(eng.Shutdown)

	backup, err := eng.SpawnRoot(Backup())
	if err != nil {
		t.Fatalf("spawn backup: %v", err)
	}
	primary, err := eng.SpawnRoot(Primary([]idpkg.PID{backup.PID()}))
	if err != nil {
		t.Fatalf("spawn primary: %v", err)
	}
	sites.Place(primary.PID(), 0)
	sites.Place(backup.PID(), 1)
	return eng, Client{Primary: primary.PID(), Backup: backup.PID()}, sites
}

type intCell struct {
	mu sync.Mutex
	v  *int
}

func (c *intCell) set(v int) {
	c.mu.Lock()
	c.v = &v
	c.mu.Unlock()
}

func (c *intCell) get() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.v == nil {
		return 0, false
	}
	return *c.v, true
}

// TestOptimisticReadFresh: when replication has caught up, the optimistic
// read returns the local value without rollback.
func TestOptimisticReadFresh(t *testing.T) {
	eng, client, sites := deploy(t, 10*time.Microsecond, 500*time.Microsecond)

	var cell intCell
	reader, err := eng.SpawnRoot(func(ctx *core.Ctx) error {
		if err := client.Put(ctx, "k", 42, 0); err != nil {
			return err
		}
		// Give replication time to land: poll the backup until it has
		// version 1 (synchronous reads, still deterministic in effect).
		for seq := 1; ; seq++ {
			resp, err := client.getFrom(ctx, client.Backup, "k", seq)
			if err != nil {
				return err
			}
			if resp.Ver >= 1 {
				break
			}
		}
		v, err := client.GetOptimistic(ctx, "k", 1000)
		if err != nil {
			return err
		}
		cell.set(v)
		return nil
	})
	if err != nil {
		t.Fatalf("spawn reader: %v", err)
	}
	sites.Place(reader.PID(), 1)

	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	v, ok := cell.get()
	if !ok {
		t.Fatal("reader never finished")
	}
	if v != 42 {
		t.Fatalf("read %d, want 42", v)
	}
	st := reader.Snapshot()
	if st.Restarts != 0 {
		t.Fatalf("fresh read rolled back %d times", st.Restarts)
	}
	if !st.AllDefinite {
		t.Fatalf("reader not definite: %+v", st)
	}
}

// TestOptimisticReadStale: a read racing ahead of replication is denied
// and the client ends up with the primary's value.
func TestOptimisticReadStale(t *testing.T) {
	// Build the deployment by hand so the replication link can lag far
	// behind the put acknowledgement, making staleness deterministic.
	const (
		local  = 10 * time.Microsecond
		remote = 500 * time.Microsecond
	)
	sites := netsim.NewSites(local, remote)
	lagged := netsim.NewOverride(sites)
	eng := core.NewEngine(core.Config{Transport: netsim.New(lagged)})
	t.Cleanup(eng.Shutdown)

	backup, err := eng.SpawnRoot(Backup())
	if err != nil {
		t.Fatalf("spawn backup: %v", err)
	}
	primary, err := eng.SpawnRoot(Primary([]idpkg.PID{backup.PID()}))
	if err != nil {
		t.Fatalf("spawn primary: %v", err)
	}
	sites.Place(primary.PID(), 0)
	sites.Place(backup.PID(), 1)
	// Replication lags: 20× the put round trip.
	lagged.SetPair(primary.PID(), backup.PID(), 20*time.Millisecond)
	client := Client{Primary: primary.PID(), Backup: backup.PID()}

	var cell intCell
	reader, err := eng.SpawnRoot(func(ctx *core.Ctx) error {
		if err := client.Put(ctx, "k", 7, 0); err != nil {
			return err
		}
		if err := client.Put(ctx, "k", 99, 1); err != nil {
			return err
		}
		// Both acks are in; replication is still in flight, so the local
		// read is stale and the verifier must deny.
		v, err := client.GetOptimistic(ctx, "k", 1000)
		if err != nil {
			return err
		}
		cell.set(v)
		return nil
	})
	if err != nil {
		t.Fatalf("spawn reader: %v", err)
	}
	sites.Place(reader.PID(), 1)

	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	v, ok := cell.get()
	if !ok {
		t.Fatal("reader never finished")
	}
	if v != 99 {
		t.Fatalf("read %d, want 99 (the committed value)", v)
	}
	st := reader.Snapshot()
	if st.Restarts == 0 {
		t.Fatal("stale read was never rolled back")
	}
	if !st.AllDefinite {
		t.Fatalf("reader not definite: %+v", st)
	}
}

// TestOptimisticReadLatency: fresh optimistic reads complete at local
// latency, far below the remote round trip a pessimistic read costs.
func TestOptimisticReadLatency(t *testing.T) {
	const (
		local  = 20 * time.Microsecond
		remote = 2 * time.Millisecond
		reads  = 5
	)
	run := func(t *testing.T, optimistic bool) time.Duration {
		t.Helper()
		eng, client, sites := deploy(t, local, remote)
		var done intCell
		var start time.Time
		reader, err := eng.SpawnRoot(func(ctx *core.Ctx) error {
			if err := client.Put(ctx, "k", 1, 0); err != nil {
				return err
			}
			for seq := 1; ; seq++ { // wait for replication
				resp, err := client.getFrom(ctx, client.Backup, "k", seq)
				if err != nil {
					return err
				}
				if resp.Ver >= 1 {
					break
				}
			}
			start = time.Now()
			for i := 0; i < reads; i++ {
				var err error
				if optimistic {
					_, err = client.GetOptimistic(ctx, "k", 1000+i)
				} else {
					_, err = client.Get(ctx, "k", 1000+i)
				}
				if err != nil {
					return err
				}
			}
			done.set(int(time.Since(start).Microseconds()))
			return nil
		})
		if err != nil {
			t.Fatalf("spawn reader: %v", err)
		}
		sites.Place(reader.PID(), 1)
		if !eng.Settle(settleTimeout) {
			t.Fatal("no settle")
		}
		us, ok := done.get()
		if !ok {
			t.Fatal("reader never finished")
		}
		return time.Duration(us) * time.Microsecond
	}

	pess := run(t, false)
	opt := run(t, true)
	t.Logf("pessimistic=%v optimistic=%v", pess, opt)
	if opt >= pess {
		t.Fatalf("optimistic reads (%v) not faster than pessimistic (%v)", opt, pess)
	}
}
