// Package replica applies HOPE to optimistic replication, the
// application sketched in the paper's §2 and explored in "Optimistic
// Replication in HOPE" [5]: a primary/backup key-value store in which a
// client colocated with a backup reads *locally* under the optimistic
// assumption that the backup is current, while a verifier process checks
// the version against the (remote, slow) primary in parallel. A stale
// read denies the assumption, rolling back everything computed from it,
// and the client retries with the primary's value.
package replica

import (
	"fmt"
	"sync/atomic"

	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/ids"
)

// Wire types. All payloads are values: HOPE replay re-delivers them.
type (
	// GetReq asks a store for a key's value and version.
	GetReq struct {
		ReplyTo ids.PID
		Key     string
		Seq     int
	}
	// GetResp answers a GetReq.
	GetResp struct {
		Seq   int
		Value int
		Ver   int
		Found bool
	}
	// PutReq writes a value through the primary.
	PutReq struct {
		ReplyTo ids.PID
		Key     string
		Value   int
		Seq     int
	}
	// PutResp acknowledges a PutReq with the new version.
	PutResp struct {
		Seq int
		Ver int
	}
	// ReplUpdate propagates a committed write to backups.
	ReplUpdate struct {
		Key   string
		Value int
		Ver   int
	}
)

// retrySeqs issues unique sequence numbers for post-rollback re-reads;
// values are journaled via Ctx.Record so replays reuse them.
var retrySeqs atomic.Int64

type entry struct {
	value int
	ver   int
}

// Primary returns the authoritative store body. Writes bump the per-key
// version and replicate asynchronously to every backup.
func Primary(backups []ids.PID) core.Body {
	return func(ctx *core.Ctx) error {
		store := make(map[string]entry)
		for {
			payload, _, err := ctx.Recv()
			if err != nil {
				return err
			}
			switch req := payload.(type) {
			case GetReq:
				e, ok := store[req.Key]
				ctx.Send(req.ReplyTo, GetResp{Seq: req.Seq, Value: e.value, Ver: e.ver, Found: ok})
			case PutReq:
				e := store[req.Key]
				e = entry{value: req.Value, ver: e.ver + 1}
				store[req.Key] = e
				for _, b := range backups {
					ctx.Send(b, ReplUpdate{Key: req.Key, Value: e.value, Ver: e.ver})
				}
				if req.ReplyTo.Valid() {
					ctx.Send(req.ReplyTo, PutResp{Seq: req.Seq, Ver: e.ver})
				}
			default:
				return fmt.Errorf("replica primary: unexpected payload %T", payload)
			}
		}
	}
}

// Backup returns a read-only replica body applying replication updates
// and serving local reads.
func Backup() core.Body {
	return func(ctx *core.Ctx) error {
		store := make(map[string]entry)
		for {
			payload, _, err := ctx.Recv()
			if err != nil {
				return err
			}
			switch req := payload.(type) {
			case ReplUpdate:
				if cur, ok := store[req.Key]; !ok || req.Ver > cur.ver {
					store[req.Key] = entry{value: req.Value, ver: req.Ver}
				}
			case GetReq:
				e, ok := store[req.Key]
				ctx.Send(req.ReplyTo, GetResp{Seq: req.Seq, Value: e.value, Ver: e.ver, Found: ok})
			default:
				return fmt.Errorf("replica backup: unexpected payload %T", payload)
			}
		}
	}
}

// Client wraps the read/write operations against a primary/backup pair.
// Seq numbering is the caller's: every operation must use a fresh seq.
type Client struct {
	Primary ids.PID
	Backup  ids.PID
}

// getFrom performs a synchronous read against one store.
func (c Client) getFrom(ctx *core.Ctx, store ids.PID, key string, seq int) (GetResp, error) {
	ctx.Send(store, GetReq{ReplyTo: ctx.PID(), Key: key, Seq: seq})
	for {
		payload, _, err := ctx.Recv()
		if err != nil {
			return GetResp{}, err
		}
		if resp, ok := payload.(GetResp); ok && resp.Seq == seq {
			return resp, nil
		}
	}
}

// Get performs a pessimistic read: one round trip to the remote primary.
func (c Client) Get(ctx *core.Ctx, key string, seq int) (int, error) {
	resp, err := c.getFrom(ctx, c.Primary, key, seq)
	if err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// GetLocal reads from the backup without any freshness guarantee or
// verification — useful for probing replication progress.
func (c Client) GetLocal(ctx *core.Ctx, key string, seq int) (value, ver int, err error) {
	resp, err := c.getFrom(ctx, c.Backup, key, seq)
	if err != nil {
		return 0, 0, err
	}
	return resp.Value, resp.Ver, nil
}

// Put writes through the primary synchronously.
func (c Client) Put(ctx *core.Ctx, key string, value, seq int) error {
	ctx.Send(c.Primary, PutReq{ReplyTo: ctx.PID(), Key: key, Value: value, Seq: seq})
	for {
		payload, _, err := ctx.Recv()
		if err != nil {
			return err
		}
		if resp, ok := payload.(PutResp); ok && resp.Seq == seq {
			return nil
		}
	}
}

// PutAsync writes through the primary without waiting for the ack.
func (c Client) PutAsync(ctx *core.Ctx, key string, value, seq int) {
	ctx.Send(c.Primary, PutReq{Key: key, Value: value, Seq: seq})
}

// GetOptimistic reads from the local backup and speculates that the
// value is current; a verifier process concurrently compares versions
// with the primary. On a stale read the assumption is denied: the caller
// rolls back to this call and re-reads from the primary directly (the
// read is idempotent, so no deduplication is needed).
func (c Client) GetOptimistic(ctx *core.Ctx, key string, seq int) (int, error) {
	local, err := c.getFrom(ctx, c.Backup, key, seq)
	if err != nil {
		return 0, err
	}

	x := ctx.AidInit()
	primary, verifySeq := c.Primary, seq

	ctx.Spawn(func(v *core.Ctx) error {
		truth, err := (Client{Primary: primary}).getFrom(v, primary, key, verifySeq)
		if err != nil {
			return err
		}
		if truth.Ver == local.Ver {
			v.Affirm(x)
		} else {
			v.Deny(x)
		}
		return nil
	})

	if ctx.Guess(x) {
		return local.Value, nil
	}

	// Stale: fetch the committed value from the primary, under a unique
	// sequence number so requeued responses from other generations of
	// this read can never satisfy it.
	rseq, ok := ctx.Record(func() any { return int(retrySeqs.Add(1)) + 1_000_000 }).(int)
	if !ok {
		return 0, fmt.Errorf("replica: corrupt journalled retry seq")
	}
	resp, err := c.getFrom(ctx, c.Primary, key, rseq)
	if err != nil {
		return 0, err
	}
	return resp.Value, nil
}
