// Package netsim provides the simulated transport underneath the virtual
// process machine: asynchronous message delivery with configurable
// per-link latency, deterministic seeding, per-pair FIFO ordering (HOPE
// assumes reliable, order-preserving channels between process pairs), and
// message counters used by the complexity experiments.
//
// This is the substitute for the paper's PVM network layer; see DESIGN.md
// §2. Latencies are injected in real time but scaled down (µs–ms), which
// preserves the latency-to-compute ratios the experiments sweep.
package netsim

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
	"github.com/hope-dist/hope/internal/transport"
)

// Handler consumes a delivered message. Handlers must be quick and
// non-blocking (typically a mailbox enqueue); they may be invoked from the
// sender's goroutine (zero latency) or a timer goroutine (with latency).
type Handler = transport.Handler

// LatencyModel computes the one-way delay for a message between two
// processes. Implementations must be safe for concurrent use.
type LatencyModel interface {
	Delay(from, to ids.PID) time.Duration
}

// Zero is the no-latency model: messages are delivered synchronously.
var Zero LatencyModel = zeroModel{}

type zeroModel struct{}

func (zeroModel) Delay(_, _ ids.PID) time.Duration { return 0 }

// Constant delays every message by the same duration.
type Constant time.Duration

// Delay implements LatencyModel.
func (c Constant) Delay(_, _ ids.PID) time.Duration { return time.Duration(c) }

// Uniform delays messages by a seeded uniform random duration in
// [Min, Max]. It is safe for concurrent use.
type Uniform struct {
	Min, Max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewUniform returns a Uniform model seeded deterministically.
func NewUniform(min, max time.Duration, seed int64) *Uniform {
	return &Uniform{Min: min, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay implements LatencyModel.
func (u *Uniform) Delay(_, _ ids.PID) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	u.mu.Lock()
	d := u.Min + time.Duration(u.rng.Int63n(int64(u.Max-u.Min)))
	u.mu.Unlock()
	return d
}

// LogNormal delays messages by a seeded log-normal distribution — the
// heavy-tailed shape of real WAN latencies: Median scales the curve and
// Sigma controls tail weight (0.5 is mild, 1.5 produces rare large
// stragglers). It is safe for concurrent use.
type LogNormal struct {
	Median time.Duration
	Sigma  float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewLogNormal returns a LogNormal model seeded deterministically.
func NewLogNormal(median time.Duration, sigma float64, seed int64) *LogNormal {
	return &LogNormal{Median: median, Sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Delay implements LatencyModel.
func (l *LogNormal) Delay(_, _ ids.PID) time.Duration {
	l.mu.Lock()
	z := l.rng.NormFloat64()
	l.mu.Unlock()
	d := time.Duration(float64(l.Median) * math.Exp(l.Sigma*z))
	if d < 0 {
		d = 0
	}
	return d
}

// Asymmetric wraps a base model, applying extra delay only to Data
// messages between user processes; control traffic uses the base model.
// (Not used by default; available to experiments that separate the cost of
// HOPE bookkeeping traffic from application traffic.)
type Asymmetric struct {
	Base  LatencyModel
	Extra time.Duration
}

// Delay implements LatencyModel.
func (a Asymmetric) Delay(from, to ids.PID) time.Duration {
	return a.Base.Delay(from, to) + a.Extra
}

// Sites models a multi-site deployment: messages within a site take
// Local, messages between sites take Remote. SiteOf maps a PID to its
// site; unmapped PIDs (e.g. AID processes) are treated as colocated with
// whichever peer they talk to, so control traffic to an assumption costs
// Local — matching the paper's prototype, where AID processes are spawned
// on the guessing host.
type Sites struct {
	mu     sync.RWMutex
	siteOf map[ids.PID]int
	local  time.Duration
	remote time.Duration
}

// NewSites returns a Sites model with the given intra- and inter-site
// latencies.
func NewSites(local, remote time.Duration) *Sites {
	return &Sites{
		siteOf: make(map[ids.PID]int),
		local:  local,
		remote: remote,
	}
}

// Place assigns pid to a site.
func (s *Sites) Place(pid ids.PID, site int) {
	s.mu.Lock()
	s.siteOf[pid] = site
	s.mu.Unlock()
}

// Delay implements LatencyModel.
func (s *Sites) Delay(from, to ids.PID) time.Duration {
	s.mu.RLock()
	fs, fok := s.siteOf[from]
	ts, tok := s.siteOf[to]
	s.mu.RUnlock()
	if !fok || !tok || fs == ts {
		return s.local
	}
	return s.remote
}

// Override wraps a base model with per-directed-pair latency overrides,
// used by tests and experiments to slow down one specific link (e.g. a
// lagging replication channel).
type Override struct {
	Base LatencyModel

	mu    sync.RWMutex
	pairs map[[2]ids.PID]time.Duration
}

// NewOverride returns an Override over base.
func NewOverride(base LatencyModel) *Override {
	if base == nil {
		base = Zero
	}
	return &Override{Base: base, pairs: make(map[[2]ids.PID]time.Duration)}
}

// SetPair fixes the latency for messages from one PID to another.
func (o *Override) SetPair(from, to ids.PID, d time.Duration) {
	o.mu.Lock()
	o.pairs[[2]ids.PID{from, to}] = d
	o.mu.Unlock()
}

// Delay implements LatencyModel.
func (o *Override) Delay(from, to ids.PID) time.Duration {
	o.mu.RLock()
	d, ok := o.pairs[[2]ids.PID{from, to}]
	o.mu.RUnlock()
	if ok {
		return d
	}
	return o.Base.Delay(from, to)
}

// Stats holds cumulative message counts by kind. It is the shared
// transport.Stats type; netsim keeps the alias for its historical name.
type Stats = transport.Stats

// Net is the simulated transport, implementing transport.Transport. It
// routes messages to registered per-PID handlers after the latency
// model's delay, preserving per-(sender,receiver) FIFO order. The zero
// value is not usable; construct with New.
type Net struct {
	latency LatencyModel

	mu       sync.Mutex
	idle     *sync.Cond // signalled when inflight returns to zero
	handlers map[ids.PID]Handler
	pairs    map[pairKey]*pairQueue
	closed   bool
	inflight int // accepted but not yet delivered messages

	counts transport.Counters // indexed by msg.Kind; 0 = dead letters
}

var _ transport.Transport = (*Net)(nil)

type pairKey struct {
	from, to ids.PID
}

// pairQueue serializes deliveries for one (sender,receiver) pair so that
// jittered latencies cannot reorder messages within a pair.
type pairQueue struct {
	mu      sync.Mutex
	pending []*timedMsg
	running bool
}

type timedMsg struct {
	m   *msg.Message
	due time.Time
}

// New constructs a transport with the given latency model (nil = Zero).
func New(latency LatencyModel) *Net {
	if latency == nil {
		latency = Zero
	}
	n := &Net{
		latency:  latency,
		handlers: make(map[ids.PID]Handler),
		pairs:    make(map[pairKey]*pairQueue),
	}
	n.idle = sync.NewCond(&n.mu)
	return n
}

// Register installs the delivery handler for pid. Registering twice for
// the same pid replaces the handler.
func (n *Net) Register(pid ids.PID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[pid] = h
}

// Unregister removes pid's handler; subsequent deliveries to pid become
// dead letters (counted, dropped).
func (n *Net) Unregister(pid ids.PID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, pid)
}

// Send enqueues m for delivery after the latency model's delay. Send never
// blocks on the receiver. Sends on a closed Net are dropped.
func (n *Net) Send(m *msg.Message) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.inflight++
	n.mu.Unlock()

	d := n.latency.Delay(m.From, m.To)
	if d <= 0 {
		n.deliver(m)
		n.done()
		return
	}

	key := pairKey{from: m.From, to: m.To}
	n.mu.Lock()
	q := n.pairs[key]
	if q == nil {
		q = &pairQueue{}
		n.pairs[key] = q
	}
	n.mu.Unlock()

	q.mu.Lock()
	q.pending = append(q.pending, &timedMsg{m: m, due: time.Now().Add(d)})
	if !q.running {
		q.running = true
		go n.drainPair(q)
	}
	q.mu.Unlock()
}

// drainPair delivers a pair's messages in FIFO order, sleeping until each
// message's due time. It exits when the queue empties.
func (n *Net) drainPair(q *pairQueue) {
	for {
		q.mu.Lock()
		if len(q.pending) == 0 {
			q.running = false
			q.mu.Unlock()
			return
		}
		tm := q.pending[0]
		q.pending = q.pending[1:]
		q.mu.Unlock()

		if wait := time.Until(tm.due); wait > 0 {
			time.Sleep(wait)
		}
		n.deliver(tm.m)
		n.done()
	}
}

// done retires one in-flight message, waking Drain when none remain.
func (n *Net) done() {
	n.mu.Lock()
	n.inflight--
	if n.inflight == 0 {
		n.idle.Broadcast()
	}
	n.mu.Unlock()
}

func (n *Net) deliver(m *msg.Message) {
	n.mu.Lock()
	h := n.handlers[m.To]
	n.mu.Unlock()
	if h == nil {
		n.counts.Observe(0)
		return
	}
	n.counts.Observe(m.Kind)
	h(m)
}

// Inflight returns the number of accepted-but-undelivered messages.
func (n *Net) Inflight() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inflight
}

// Drain blocks until every message accepted so far has been delivered.
// Useful in tests together with zero or small latencies; prefer polling
// Inflight when the system might never quiesce.
func (n *Net) Drain() {
	n.mu.Lock()
	for n.inflight > 0 {
		n.idle.Wait()
	}
	n.mu.Unlock()
}

// Close stops accepting new sends and waits for in-flight deliveries.
func (n *Net) Close() {
	n.mu.Lock()
	n.closed = true
	for n.inflight > 0 {
		n.idle.Wait()
	}
	n.mu.Unlock()
}

// Stats returns a snapshot of the cumulative delivery counters.
func (n *Net) Stats() Stats { return n.counts.Snapshot() }
