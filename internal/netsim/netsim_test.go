package netsim

import (
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
)

func data(from, to ids.PID, payload any) *msg.Message {
	return &msg.Message{Kind: msg.KindData, From: from, To: to, Payload: payload}
}

// sink collects delivered messages.
type sink struct {
	mu   sync.Mutex
	msgs []*msg.Message
}

func (s *sink) handler() Handler {
	return func(m *msg.Message) {
		s.mu.Lock()
		s.msgs = append(s.msgs, m)
		s.mu.Unlock()
	}
}

func (s *sink) payloads() []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]any, len(s.msgs))
	for i, m := range s.msgs {
		out[i] = m.Payload
	}
	return out
}

func TestZeroLatencySynchronousDelivery(t *testing.T) {
	n := New(nil)
	defer n.Close()
	var s sink
	n.Register(2, s.handler())
	n.Send(data(1, 2, "hello"))
	// Zero latency delivers before Send returns.
	got := s.payloads()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("payloads = %v", got)
	}
}

func TestPerPairFIFOUnderJitter(t *testing.T) {
	n := New(NewUniform(0, 300*time.Microsecond, 7))
	defer n.Close()
	var s sink
	n.Register(2, s.handler())
	const count = 50
	for i := 0; i < count; i++ {
		n.Send(data(1, 2, i))
	}
	n.Drain()
	got := s.payloads()
	if len(got) != count {
		t.Fatalf("delivered %d, want %d", len(got), count)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered within pair: position %d has %v", i, v)
		}
	}
}

func TestDeadLetterCounted(t *testing.T) {
	n := New(nil)
	defer n.Close()
	n.Send(data(1, 99, "lost"))
	if st := n.Stats(); st.Dead != 1 {
		t.Fatalf("dead = %d, want 1", st.Dead)
	}
}

func TestUnregisterMakesDeadLetters(t *testing.T) {
	n := New(nil)
	defer n.Close()
	var s sink
	n.Register(2, s.handler())
	n.Send(data(1, 2, 1))
	n.Unregister(2)
	n.Send(data(1, 2, 2))
	if got := s.payloads(); len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if st := n.Stats(); st.Dead != 1 {
		t.Fatalf("dead = %d, want 1", st.Dead)
	}
}

func TestStatsByKind(t *testing.T) {
	n := New(nil)
	defer n.Close()
	var s sink
	n.Register(5, s.handler())
	n.Send(msg.Guess(1, ids.IntervalID{Proc: 1, Seq: 0, Epoch: 1}, ids.AID(5)))
	n.Send(msg.Affirm(1, ids.IntervalID{Proc: 1, Seq: 0, Epoch: 1}, ids.AID(5), nil))
	n.Send(msg.Deny(1, ids.IntervalID{Proc: 1, Seq: 0, Epoch: 1}, ids.AID(5)))
	n.Send(data(1, 5, "x"))
	st := n.Stats()
	if st.Guess != 1 || st.Affirm != 1 || st.Deny != 1 || st.Data != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Total() != 4 {
		t.Fatalf("total = %d, want 4", st.Total())
	}
	if st.Control() != 3 {
		t.Fatalf("control = %d, want 3", st.Control())
	}
}

func TestSendAfterCloseDropped(t *testing.T) {
	n := New(nil)
	var s sink
	n.Register(2, s.handler())
	n.Close()
	n.Send(data(1, 2, "late"))
	if got := s.payloads(); len(got) != 0 {
		t.Fatalf("delivered after close: %v", got)
	}
}

func TestDrainWaitsForLatentMessages(t *testing.T) {
	n := New(Constant(2 * time.Millisecond))
	defer n.Close()
	var s sink
	n.Register(2, s.handler())
	n.Send(data(1, 2, "slow"))
	if got := s.payloads(); len(got) != 0 {
		t.Fatal("latent message delivered immediately")
	}
	n.Drain()
	if got := s.payloads(); len(got) != 1 {
		t.Fatalf("after drain: %v", got)
	}
}

func TestConstantLatencyDelays(t *testing.T) {
	const d = 3 * time.Millisecond
	n := New(Constant(d))
	defer n.Close()
	done := make(chan time.Time, 1)
	n.Register(2, func(*msg.Message) { done <- time.Now() })
	start := time.Now()
	n.Send(data(1, 2, "x"))
	arrived := <-done
	if got := arrived.Sub(start); got < d {
		t.Fatalf("delivered after %v, want >= %v", got, d)
	}
}

func TestUniformModelBounds(t *testing.T) {
	u := NewUniform(time.Millisecond, 2*time.Millisecond, 42)
	for i := 0; i < 100; i++ {
		d := u.Delay(1, 2)
		if d < time.Millisecond || d > 2*time.Millisecond {
			t.Fatalf("delay %v out of bounds", d)
		}
	}
	degenerate := NewUniform(time.Millisecond, time.Millisecond, 1)
	if d := degenerate.Delay(1, 2); d != time.Millisecond {
		t.Fatalf("degenerate delay = %v", d)
	}
}

func TestSitesModel(t *testing.T) {
	s := NewSites(time.Millisecond, 10*time.Millisecond)
	s.Place(1, 0)
	s.Place(2, 0)
	s.Place(3, 1)
	if d := s.Delay(1, 2); d != time.Millisecond {
		t.Fatalf("intra-site = %v", d)
	}
	if d := s.Delay(1, 3); d != 10*time.Millisecond {
		t.Fatalf("inter-site = %v", d)
	}
	// Unplaced PIDs (AID processes) are local.
	if d := s.Delay(1, 99); d != time.Millisecond {
		t.Fatalf("unplaced = %v", d)
	}
}

func TestOverrideModel(t *testing.T) {
	o := NewOverride(Constant(time.Millisecond))
	o.SetPair(1, 2, 5*time.Millisecond)
	if d := o.Delay(1, 2); d != 5*time.Millisecond {
		t.Fatalf("override = %v", d)
	}
	if d := o.Delay(2, 1); d != time.Millisecond {
		t.Fatalf("reverse direction = %v (override must be directed)", d)
	}
	if d := o.Delay(3, 4); d != time.Millisecond {
		t.Fatalf("base = %v", d)
	}
}

func TestAsymmetricModel(t *testing.T) {
	a := Asymmetric{Base: Constant(time.Millisecond), Extra: 2 * time.Millisecond}
	if d := a.Delay(1, 2); d != 3*time.Millisecond {
		t.Fatalf("delay = %v", d)
	}
}

// TestConcurrentSendsAllDelivered: concurrency-safety of the transport.
func TestConcurrentSendsAllDelivered(t *testing.T) {
	n := New(NewUniform(0, 100*time.Microsecond, 9))
	defer n.Close()
	var s sink
	n.Register(1, s.handler())
	const senders, each = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < senders; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				n.Send(data(ids.PID(p+10), 1, p*each+i))
			}
		}(p)
	}
	wg.Wait()
	n.Drain()
	if got := s.payloads(); len(got) != senders*each {
		t.Fatalf("delivered %d, want %d", len(got), senders*each)
	}
}

func TestLogNormalModel(t *testing.T) {
	l := NewLogNormal(time.Millisecond, 0.5, 42)
	var total time.Duration
	max := time.Duration(0)
	const n = 1000
	for i := 0; i < n; i++ {
		d := l.Delay(1, 2)
		if d < 0 {
			t.Fatalf("negative delay %v", d)
		}
		total += d
		if d > max {
			max = d
		}
	}
	mean := total / n
	// Log-normal with median 1ms, sigma 0.5: mean ≈ 1.13ms, and the
	// tail must reach beyond the median.
	if mean < 500*time.Microsecond || mean > 3*time.Millisecond {
		t.Fatalf("mean = %v, implausible for median 1ms", mean)
	}
	if max < 2*time.Millisecond {
		t.Fatalf("max = %v, no tail observed", max)
	}
}

func TestLogNormalDeterministicSeed(t *testing.T) {
	a := NewLogNormal(time.Millisecond, 1, 7)
	b := NewLogNormal(time.Millisecond, 1, 7)
	for i := 0; i < 50; i++ {
		if a.Delay(1, 2) != b.Delay(1, 2) {
			t.Fatal("same seed diverged")
		}
	}
}
