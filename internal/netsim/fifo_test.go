package netsim

import (
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
)

// TestPerPairFIFOProperty is the transport invariant HOPE assumes of the
// PVM network layer (and that internal/wire must also uphold): messages
// between one (sender, receiver) pair are delivered in send order, under
// concurrent senders and randomized latency models that would otherwise
// happily reorder them.
func TestPerPairFIFOProperty(t *testing.T) {
	models := map[string]LatencyModel{
		"zero":      Zero,
		"constant":  Constant(200 * time.Microsecond),
		"uniform":   NewUniform(0, 2*time.Millisecond, 42),
		"lognormal": NewLogNormal(300*time.Microsecond, 1.5, 43),
		"asymmetric": Asymmetric{
			Base:  NewUniform(0, time.Millisecond, 44),
			Extra: 100 * time.Microsecond,
		},
	}
	for name, model := range models {
		model := model
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			n := New(model)
			defer n.Close()

			const senders, receivers, perPair = 6, 3, 120
			type rx struct {
				from ids.PID
				n    int
			}
			got := make([][]rx, receivers)
			var mu sync.Mutex
			for r := 0; r < receivers; r++ {
				r := r
				n.Register(ids.PID(100+r), func(m *msg.Message) {
					mu.Lock()
					got[r] = append(got[r], rx{from: m.From, n: m.Payload.(int)})
					mu.Unlock()
				})
			}

			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					from := ids.PID(s + 1)
					for i := 0; i < perPair; i++ {
						to := ids.PID(100 + i%receivers)
						n.Send(&msg.Message{Kind: msg.KindData, From: from, To: to, Payload: i})
					}
				}(s)
			}
			wg.Wait()
			n.Drain()

			mu.Lock()
			defer mu.Unlock()
			total := 0
			next := map[[2]ids.PID]int{}
			for r := 0; r < receivers; r++ {
				to := ids.PID(100 + r)
				for _, m := range got[r] {
					key := [2]ids.PID{m.from, to}
					// Sender s sends payload i to receiver i%receivers, so
					// pair (s, r) must observe r, r+receivers, r+2·receivers…
					want, started := next[key]
					if !started {
						want = r
					}
					if m.n != want {
						t.Fatalf("pair %v->%v: got %d, want %d (reordered)", m.from, to, m.n, want)
					}
					next[key] = m.n + receivers
					total++
				}
			}
			if total != senders*perPair {
				t.Fatalf("delivered %d, want %d (lost messages)", total, senders*perPair)
			}
		})
	}
}
