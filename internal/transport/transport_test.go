package transport

import (
	"testing"

	"github.com/hope-dist/hope/internal/msg"
)

func TestLocalDelivery(t *testing.T) {
	l := NewLocal()
	defer l.Close()
	var got []*msg.Message
	l.Register(1, func(m *msg.Message) { got = append(got, m) })

	l.Send(&msg.Message{Kind: msg.KindData, From: 2, To: 1, Payload: "hi"})
	if len(got) != 1 || got[0].Payload != "hi" {
		t.Fatalf("synchronous delivery failed: %v", got)
	}
	l.Send(&msg.Message{Kind: msg.KindGuess, From: 2, To: 9, AID: 9}) // no handler
	st := l.Stats()
	if st.Data != 1 || st.Dead != 1 {
		t.Fatalf("stats = %v, want data=1 dead=1", st)
	}
	l.Unregister(1)
	l.Send(&msg.Message{Kind: msg.KindData, From: 2, To: 1})
	if l.Stats().Dead != 2 {
		t.Fatal("unregistered PID should dead-letter")
	}
	if l.Inflight() != 0 {
		t.Fatal("Local transport can never have in-flight messages")
	}
	l.Drain() // must not block

	l.Close()
	l.Send(&msg.Message{Kind: msg.KindData, From: 2, To: 1})
	if len(got) != 1 {
		t.Fatal("send on closed transport delivered")
	}
}

func TestStatsAggregates(t *testing.T) {
	var c Counters
	for _, k := range msg.Kinds {
		c.Observe(k)
	}
	c.Observe(0) // dead letter
	st := c.Snapshot()
	if st.Total() != 7 { // Guess..Retract + Data; probes and cut traffic excluded
		t.Fatalf("Total = %d, want 7 (%v)", st.Total(), st)
	}
	if st.Control() != 6 {
		t.Fatalf("Control = %d, want 6", st.Control())
	}
	if st.Dead != 1 || st.Probe != 1 {
		t.Fatalf("dead/probe miscounted: %v", st)
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQueueLimitsNormAndAllows(t *testing.T) {
	// Zero fields resolve to the package defaults.
	q := QueueLimits{}.Norm()
	if q.MaxFrames != DefaultMaxQueueFrames || q.MaxBytes != DefaultMaxQueueBytes {
		t.Fatalf("Norm() = %+v, want defaults", q)
	}
	// Negative fields survive Norm and mean unlimited.
	u := QueueLimits{MaxFrames: -1, MaxBytes: -1}.Norm()
	if u.MaxFrames != -1 || u.MaxBytes != -1 {
		t.Fatalf("Norm() clobbered unlimited: %+v", u)
	}
	if !u.Allows(1<<30, 1<<40) {
		t.Fatal("unlimited limits rejected a huge queue")
	}
	// Explicit caps bind exactly at the boundary.
	c := QueueLimits{MaxFrames: 4, MaxBytes: 100}.Norm()
	if !c.Allows(4, 100) {
		t.Fatal("cap rejected a queue exactly at its bounds")
	}
	if c.Allows(5, 100) || c.Allows(4, 101) {
		t.Fatal("cap allowed a queue past its bounds")
	}
}
