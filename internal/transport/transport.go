// Package transport defines the interface between the HOPE runtime and
// whatever carries its messages. The engine (internal/core) and the
// virtual process machine (internal/vpm) speak only to this interface;
// internal/netsim implements it with an in-process simulated network and
// internal/wire implements it with real TCP connections between OS
// processes.
//
// Every implementation must provide the two properties HOPE's Algorithm 2
// assumes of the PVM network layer (paper §5, DESIGN.md §2):
//
//   - reliable delivery: an accepted message is eventually delivered to
//     the destination's handler (or counted as a dead letter if no
//     handler is registered);
//   - per-pair FIFO: messages from one sender PID to one receiver PID are
//     delivered in send order.
//
// Nothing is assumed about ordering across pairs, and delivery may happen
// on any goroutine — handlers must be quick and non-blocking (typically a
// mailbox enqueue).
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/msg"
)

// Handler consumes a delivered message. Handlers may be invoked from the
// sender's goroutine (synchronous implementations), a timer goroutine
// (simulated latency), or a socket read loop (wire transport).
type Handler func(*msg.Message)

// Transport routes messages to registered per-PID handlers.
type Transport interface {
	// Register installs the delivery handler for pid, replacing any
	// previous handler.
	Register(pid ids.PID, h Handler)
	// Unregister removes pid's handler; subsequent deliveries to pid
	// become dead letters (counted, dropped).
	Unregister(pid ids.PID)
	// Send enqueues m for asynchronous delivery. Send never blocks on the
	// receiver; sends on a closed transport are dropped.
	Send(m *msg.Message)
	// Inflight returns the number of accepted-but-undelivered messages
	// this transport instance knows about. For a distributed transport
	// this covers the local side only (queued and unacknowledged sends);
	// messages still inside a remote peer are invisible.
	Inflight() int
	// Drain blocks until Inflight reaches zero.
	Drain()
	// Close stops accepting new sends and releases transport resources.
	Close()
	// Stats returns a snapshot of cumulative delivery counters.
	Stats() Stats
}

// Default per-peer outbound queue bounds, applied when a QueueLimits
// field is zero. They are deliberately generous: the cap exists to keep
// a node's memory finite while a peer is unreachable, not to throttle a
// healthy link.
const (
	DefaultMaxQueueFrames = 1 << 16  // 65536 queued frames per peer
	DefaultMaxQueueBytes  = 64 << 20 // 64 MiB of encoded payload per peer
)

// QueueLimits bounds a transport's per-peer outbound (resend) queue.
// A zero field means the package default; a negative field means
// unlimited. When a send would exceed either bound the transport drops
// the new message fail-fast (counted, traced) rather than blocking the
// caller or growing without bound — Send stays wait-free no matter what
// the remote end does.
type QueueLimits struct {
	MaxFrames int // queued-but-unacknowledged frames per peer
	MaxBytes  int // encoded bytes across those frames
}

// Norm resolves zero fields to the package defaults.
func (q QueueLimits) Norm() QueueLimits {
	if q.MaxFrames == 0 {
		q.MaxFrames = DefaultMaxQueueFrames
	}
	if q.MaxBytes == 0 {
		q.MaxBytes = DefaultMaxQueueBytes
	}
	return q
}

// Allows reports whether a queue already normalized by Norm may grow to
// frames frames and bytes bytes.
func (q QueueLimits) Allows(frames, bytes int) bool {
	if q.MaxFrames > 0 && frames > q.MaxFrames {
		return false
	}
	if q.MaxBytes > 0 && bytes > q.MaxBytes {
		return false
	}
	return true
}

// Stats holds cumulative delivered-message counts by kind.
type Stats struct {
	Guess    uint64
	Affirm   uint64
	Deny     uint64
	Replace  uint64
	Rollback uint64
	Retract  uint64
	Data     uint64
	Probe    uint64 // engine-internal GC probes
	Dead     uint64 // delivered to an unregistered PID
}

// Total returns the number of delivered protocol messages (excluding
// dead letters and GC probes).
func (s Stats) Total() uint64 {
	return s.Guess + s.Affirm + s.Deny + s.Replace + s.Rollback + s.Retract + s.Data
}

// Control returns the number of HOPE bookkeeping messages (everything
// except Data).
func (s Stats) Control() uint64 { return s.Total() - s.Data }

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("guess=%d affirm=%d deny=%d replace=%d rollback=%d retract=%d data=%d dead=%d",
		s.Guess, s.Affirm, s.Deny, s.Replace, s.Rollback, s.Retract, s.Data, s.Dead)
}

// Counters is the shared per-kind delivery counter block used by
// implementations; index 0 counts dead letters.
type Counters [16]atomic.Uint64

// Observe counts one delivered message of kind k (0 = dead letter).
func (c *Counters) Observe(k msg.Kind) { c[int(k)].Add(1) }

// Snapshot converts the counters into a Stats value.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Dead:     c[0].Load(),
		Guess:    c[int(msg.KindGuess)].Load(),
		Affirm:   c[int(msg.KindAffirm)].Load(),
		Deny:     c[int(msg.KindDeny)].Load(),
		Replace:  c[int(msg.KindReplace)].Load(),
		Rollback: c[int(msg.KindRollback)].Load(),
		Retract:  c[int(msg.KindRetract)].Load(),
		Data:     c[int(msg.KindData)].Load(),
		Probe:    c[int(msg.KindProbe)].Load(),
	}
}

// Local is the trivial in-process transport: synchronous delivery in the
// sender's goroutine, no latency, no loss. It is the engine's default and
// is equivalent to netsim with the Zero latency model. The zero value is
// not usable; construct with NewLocal.
type Local struct {
	mu       sync.RWMutex
	handlers map[ids.PID]Handler
	closed   bool

	counts Counters
}

// NewLocal constructs a Local transport.
func NewLocal() *Local {
	return &Local{handlers: make(map[ids.PID]Handler)}
}

// Register implements Transport.
func (l *Local) Register(pid ids.PID, h Handler) {
	l.mu.Lock()
	l.handlers[pid] = h
	l.mu.Unlock()
}

// Unregister implements Transport.
func (l *Local) Unregister(pid ids.PID) {
	l.mu.Lock()
	delete(l.handlers, pid)
	l.mu.Unlock()
}

// Send implements Transport: the handler runs before Send returns.
func (l *Local) Send(m *msg.Message) {
	l.mu.RLock()
	h := l.handlers[m.To]
	closed := l.closed
	l.mu.RUnlock()
	if closed {
		return
	}
	if h == nil {
		l.counts.Observe(0)
		return
	}
	l.counts.Observe(m.Kind)
	h(m)
}

// Inflight implements Transport; synchronous delivery means nothing is
// ever in flight.
func (l *Local) Inflight() int { return 0 }

// Drain implements Transport (a no-op for synchronous delivery).
func (l *Local) Drain() {}

// Close implements Transport.
func (l *Local) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}

// Stats implements Transport.
func (l *Local) Stats() Stats { return l.counts.Snapshot() }

var _ Transport = (*Local)(nil)
