package cluster

import (
	"reflect"
	"testing"
)

func TestViewLineRoundTrip(t *testing.T) {
	v := sampleView()
	line := FormatViewLine(2, v)
	vl, ok, err := ParseViewLine(line)
	if err != nil || !ok {
		t.Fatalf("parse %q: ok=%v err=%v", line, ok, err)
	}
	want := ViewLine{Node: 2, Epoch: 9, Live: []int{0, 2}, Dead: []int{5}}
	if !reflect.DeepEqual(vl, want) {
		t.Fatalf("parsed %+v, want %+v", vl, want)
	}
}

func TestViewLineEmptyLists(t *testing.T) {
	line := FormatViewLine(0, View{Epoch: 1, Members: []Member{{ID: 0, State: StateAlive, Epoch: 1}}})
	vl, ok, err := ParseViewLine(line)
	if err != nil || !ok {
		t.Fatalf("parse %q: ok=%v err=%v", line, ok, err)
	}
	if !reflect.DeepEqual(vl.Live, []int{0}) || vl.Dead != nil {
		t.Fatalf("parsed %+v", vl)
	}
}

func TestParseViewLineRejects(t *testing.T) {
	for _, line := range []string{
		"HOPED VIEW node=1 epoch=2 live=0", // missing dead
		"HOPED VIEW node=x epoch=2 live=0 dead=-",
		"HOPED VIEW node=1 epoch=2 live=0,b dead=-",
		"HOPED VIEW garbage",
	} {
		if _, ok, err := ParseViewLine(line); err == nil && ok {
			t.Errorf("accepted %q", line)
		}
	}
	for _, line := range []string{"HOPED READY node=1", "", "something else"} {
		if _, ok, err := ParseViewLine(line); ok || err != nil {
			t.Errorf("non-view line %q: ok=%v err=%v", line, ok, err)
		}
	}
}

func TestParseViewLineForwardCompat(t *testing.T) {
	vl, ok, err := ParseViewLine("HOPED VIEW node=1 epoch=2 live=1,2 dead=- shard=abc")
	if err != nil || !ok {
		t.Fatalf("unknown field broke parsing: ok=%v err=%v", ok, err)
	}
	if vl.Node != 1 || vl.Epoch != 2 {
		t.Fatalf("parsed %+v", vl)
	}
}
