package cluster

import (
	"reflect"
	"testing"
)

func TestRingDeterministicAndTotal(t *testing.T) {
	a := NewRing([]int{3, 1, 2, 1}, 32) // order and duplicates must not matter
	b := NewRing([]int{1, 2, 3}, 32)
	if !reflect.DeepEqual(a.Live(), []int{1, 2, 3}) {
		t.Fatalf("Live = %v", a.Live())
	}
	for key := uint64(0); key < 4096; key++ {
		oa, oka := a.Owner(key)
		ob, okb := b.Owner(key)
		if !oka || !okb || oa != ob {
			t.Fatalf("key %d: owners disagree (%d,%v) vs (%d,%v)", key, oa, oka, ob, okb)
		}
		found := false
		for _, id := range a.Live() {
			if id == oa {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %d owned by %d, not a live member", key, oa)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if _, ok := r.Owner(42); ok {
		t.Fatalf("empty ring owns keys")
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d", r.Size())
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]int{0, 1, 2, 3, 4}, DefaultVNodes)
	shares := r.Shares()
	var total float64
	for id, s := range shares {
		total += s
		// With 64 vnodes the max/min spread stays well inside 2x of fair.
		if s < 0.2/2 || s > 0.2*2 {
			t.Fatalf("member %d share %.3f outside [0.1, 0.4]", id, s)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %.6f", total)
	}
}

// TestRingMinimalMovement pins the consistent-hashing property the
// handoff story rests on: removing one member re-owns only that
// member's keys, and every re-owned key lands on a surviving member.
func TestRingMinimalMovement(t *testing.T) {
	before := NewRing([]int{0, 1, 2, 3}, DefaultVNodes)
	after := NewRing([]int{0, 1, 3}, DefaultVNodes) // member 2 died
	moved, kept := 0, 0
	for key := uint64(0); key < 8192; key++ {
		ob, _ := before.Owner(key)
		oa, ok := after.Owner(key)
		if !ok {
			t.Fatalf("key %d unowned after removal", key)
		}
		if oa == 2 {
			t.Fatalf("key %d owned by the removed member", key)
		}
		switch {
		case ob == 2:
			moved++ // had to move
		case ob == oa:
			kept++
		default:
			t.Fatalf("key %d moved from surviving member %d to %d", key, ob, oa)
		}
	}
	if moved == 0 {
		t.Fatalf("member 2 owned nothing before removal — degenerate ring")
	}
}

// TestRingJoinTakesShare pins the join direction: a new member takes a
// nontrivial share and only ever takes keys (no key moves between two
// pre-existing members).
func TestRingJoinTakesShare(t *testing.T) {
	before := NewRing([]int{1, 2, 3}, DefaultVNodes)
	after := NewRing([]int{1, 2, 3, 4}, DefaultVNodes)
	taken := 0
	for key := uint64(0); key < 8192; key++ {
		ob, _ := before.Owner(key)
		oa, _ := after.Owner(key)
		if oa == 4 {
			taken++
			continue
		}
		if ob != oa {
			t.Fatalf("key %d moved %d→%d though neither is the joiner", key, ob, oa)
		}
	}
	if taken < 8192/8 {
		t.Fatalf("joiner took only %d/8192 keys", taken)
	}
}
