// Package cluster is the dynamic-membership layer: it turns a set of
// hand-wired hoped processes into an elastic cluster. Three pieces
// compose:
//
//   - an epoch-numbered membership View (this file): each member record
//     carries the view epoch at which it last changed, so views gossiped
//     between nodes merge by taking the freshest record per member —
//     with one override, sticky death: a member seen Dead is Dead on
//     every node forever, whatever epoch a livelier record claims. A
//     rejoining or long-partitioned node therefore cannot resurrect a
//     stale view; its records lose every merge.
//
//   - a membership Table (table.go) folding local failure-detector
//     evidence (wire's Alive → Suspect → Dead) and remote gossip into
//     one view, bumping the epoch only on real membership changes
//     (join, death) — suspicion is advisory and must not reshard.
//
//   - a consistent-hash Ring (ring.go) over the live view, with virtual
//     nodes for balance. Every node with the same live set computes the
//     same ring, so AID/PID ownership needs no coordination: the view
//     is the authority and the ring is a pure function of it.
//
// The Manager (manager.go) glues the table to a wire transport: it
// gossips the local view on a timer and on every change, merges inbound
// views, discovers peer addresses, and rebuilds the ring.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// MaxID bounds member IDs, mirroring wire.MaxNodes: the top 16 bits of
// a PID name its node, so the membership space is the PID namespace's
// node space. (Mirrored rather than imported to keep this package free
// of transport dependencies; wire_test pins the two constants equal.)
const MaxID = 1 << 16

// MemberState is a member's position in the view. Alive and Suspect
// are both "live" for ownership purposes — a suspected node keeps its
// ring share, so a slow heartbeat cannot cause ownership flapping —
// and only Dead (sticky, terminal) removes a member from the ring.
type MemberState uint8

const (
	// StateAlive: the member is participating (or assumed to be, for a
	// freshly seeded contact with no evidence yet).
	StateAlive MemberState = iota
	// StateSuspect: some node's failure detector has seen silence past
	// its suspect threshold. Advisory: the member keeps its ring share.
	StateSuspect
	// StateDead: declared dead. Sticky — no later record, whatever its
	// epoch, may resurrect this member. A crashed node rejoins the
	// cluster only under a fresh ID.
	StateDead
)

// String implements fmt.Stringer.
func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Member is one node's record in a view.
type Member struct {
	ID    int
	Addr  string // listen address, "" until learned
	State MemberState
	Epoch uint64 // view epoch at which this record last changed
}

// String implements fmt.Stringer.
func (m Member) String() string {
	return fmt.Sprintf("%d@%s:%s/e%d", m.ID, m.Addr, m.State, m.Epoch)
}

// View is an epoch-numbered membership snapshot. Epoch is the issuing
// node's view epoch — the maximum over all member epochs — and bumps
// exactly once per membership change (a join or a death; see Table).
// Members are sorted by ID.
type View struct {
	Epoch   uint64
	Members []Member
}

// Live returns the IDs of every non-dead member, sorted ascending.
// This is the set the ownership ring is built over.
func (v View) Live() []int {
	out := make([]int, 0, len(v.Members))
	for _, m := range v.Members {
		if m.State != StateDead {
			out = append(out, m.ID)
		}
	}
	sort.Ints(out)
	return out
}

// Dead returns the IDs of every dead member, sorted ascending.
func (v View) Dead() []int {
	var out []int
	for _, m := range v.Members {
		if m.State == StateDead {
			out = append(out, m.ID)
		}
	}
	sort.Ints(out)
	return out
}

// Member returns the record for id, if present.
func (v View) Member(id int) (Member, bool) {
	for _, m := range v.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// String implements fmt.Stringer.
func (v View) String() string {
	parts := make([]string, len(v.Members))
	for i, m := range v.Members {
		parts[i] = m.String()
	}
	return fmt.Sprintf("view{e%d %s}", v.Epoch, strings.Join(parts, " "))
}

// ---------------------------------------------------------------------------
// Codec
//
// Views travel as opaque gossip payloads on the wire layer, so the
// encoding is versioned and defensive: DecodeView must reject any
// byte-level corruption or protocol-level inconsistency (epoch
// regression inside a view, duplicate members, out-of-range IDs)
// rather than merge garbage into the membership table. FuzzClusterView
// pins this.

// viewVersion is the gossip payload format version.
const viewVersion = 1

// maxViewAddr bounds one member's address string, so a corrupt length
// cannot force a huge allocation.
const maxViewAddr = 256

// AppendView encodes v onto buf: version byte, view epoch, member
// count, then per member its ID, state, epoch, and address. Members
// must be sorted by ID with no duplicates and no epoch above the view
// epoch (Table snapshots satisfy this by construction).
func AppendView(buf []byte, v View) ([]byte, error) {
	buf = append(buf, viewVersion)
	buf = binary.AppendUvarint(buf, v.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(v.Members)))
	prev := -1
	for _, m := range v.Members {
		if m.ID <= prev || m.ID >= MaxID {
			return nil, fmt.Errorf("cluster: member ID %d out of order or range", m.ID)
		}
		prev = m.ID
		if m.State > StateDead {
			return nil, fmt.Errorf("cluster: member %d has invalid state %d", m.ID, m.State)
		}
		if m.Epoch > v.Epoch {
			return nil, fmt.Errorf("cluster: member %d epoch %d exceeds view epoch %d", m.ID, m.Epoch, v.Epoch)
		}
		if len(m.Addr) > maxViewAddr {
			return nil, fmt.Errorf("cluster: member %d address too long (%d bytes)", m.ID, len(m.Addr))
		}
		buf = binary.AppendUvarint(buf, uint64(m.ID))
		buf = append(buf, byte(m.State))
		buf = binary.AppendUvarint(buf, m.Epoch)
		buf = binary.AppendUvarint(buf, uint64(len(m.Addr)))
		buf = append(buf, m.Addr...)
	}
	return buf, nil
}

// EncodeView is AppendView into a fresh buffer.
func EncodeView(v View) ([]byte, error) { return AppendView(nil, v) }

// DecodeView decodes one gossip payload, enforcing every invariant
// AppendView promises: sorted unique member IDs inside [0, MaxID),
// valid states, member epochs bounded by the view epoch, addresses
// bounded by maxViewAddr, and no trailing bytes.
func DecodeView(data []byte) (View, error) {
	var v View
	if len(data) == 0 {
		return v, fmt.Errorf("cluster: empty view payload")
	}
	if data[0] != viewVersion {
		return v, fmt.Errorf("cluster: view version %d, want %d", data[0], viewVersion)
	}
	r := data[1:]
	uv := func() (uint64, error) {
		x, n := binary.Uvarint(r)
		if n <= 0 {
			return 0, fmt.Errorf("cluster: truncated view payload")
		}
		r = r[n:]
		return x, nil
	}
	epoch, err := uv()
	if err != nil {
		return v, err
	}
	count, err := uv()
	if err != nil {
		return v, err
	}
	// Each member takes at least 4 bytes (id, state, epoch, addr len).
	if count > uint64(len(r))/4+1 {
		return v, fmt.Errorf("cluster: member count %d exceeds payload", count)
	}
	v.Epoch = epoch
	v.Members = make([]Member, 0, count)
	prev := -1
	for i := uint64(0); i < count; i++ {
		id, err := uv()
		if err != nil {
			return View{}, err
		}
		if int(id) <= prev || id >= MaxID {
			return View{}, fmt.Errorf("cluster: member ID %d out of order or range", id)
		}
		prev = int(id)
		if len(r) == 0 {
			return View{}, fmt.Errorf("cluster: truncated view payload")
		}
		state := MemberState(r[0])
		r = r[1:]
		if state > StateDead {
			return View{}, fmt.Errorf("cluster: member %d has invalid state %d", id, state)
		}
		mepoch, err := uv()
		if err != nil {
			return View{}, err
		}
		if mepoch > epoch {
			return View{}, fmt.Errorf("cluster: member %d epoch %d exceeds view epoch %d (regressed view)", id, mepoch, epoch)
		}
		alen, err := uv()
		if err != nil {
			return View{}, err
		}
		if alen > maxViewAddr || alen > uint64(len(r)) {
			return View{}, fmt.Errorf("cluster: member %d address length %d out of range", id, alen)
		}
		addr := string(r[:alen])
		r = r[alen:]
		v.Members = append(v.Members, Member{ID: int(id), Addr: addr, State: state, Epoch: mepoch})
	}
	if len(r) != 0 {
		return View{}, fmt.Errorf("cluster: %d trailing bytes after view", len(r))
	}
	return v, nil
}
