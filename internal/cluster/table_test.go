package cluster

import (
	"reflect"
	"testing"
)

// TestDetectorTransitions is the failure-detector → membership
// contract, table-driven: a sequence of first-hand evidence events
// (what wire's Alive→Suspect→Dead detector emits) must produce exactly
// the view changes listed and no others. In particular the canonical
// Alive→Suspect→Dead progression is exactly one view change (the
// death), and a late heartbeat that clears a suspicion — even several
// times over — never flaps the epoch or the ring.
func TestDetectorTransitions(t *testing.T) {
	type ev struct {
		id    int
		state MemberState
	}
	cases := []struct {
		name       string
		evidence   []ev
		wantBumps  int   // epoch increments across the sequence
		wantLive   []int // live set after the sequence (self=0 always present)
		wantDead   []int
		wantStates map[int]MemberState
	}{
		{
			name:      "suspect then dead is one view change",
			evidence:  []ev{{1, StateSuspect}, {1, StateDead}},
			wantBumps: 1,
			wantLive:  []int{0, 2},
			wantDead:  []int{1},
		},
		{
			name:       "late heartbeat clears suspicion with no flap",
			evidence:   []ev{{1, StateSuspect}, {1, StateAlive}, {1, StateSuspect}, {1, StateAlive}},
			wantBumps:  0,
			wantLive:   []int{0, 1, 2},
			wantDead:   nil,
			wantStates: map[int]MemberState{1: StateAlive},
		},
		{
			name:       "suspicion alone does not reshard",
			evidence:   []ev{{1, StateSuspect}, {2, StateSuspect}},
			wantBumps:  0,
			wantLive:   []int{0, 1, 2},
			wantDead:   nil,
			wantStates: map[int]MemberState{1: StateSuspect, 2: StateSuspect},
		},
		{
			name:      "death after recovery still one change",
			evidence:  []ev{{1, StateSuspect}, {1, StateAlive}, {1, StateSuspect}, {1, StateDead}},
			wantBumps: 1,
			wantLive:  []int{0, 2},
			wantDead:  []int{1},
		},
		{
			name:      "dead is sticky against evidence",
			evidence:  []ev{{1, StateDead}, {1, StateAlive}, {1, StateSuspect}, {1, StateDead}},
			wantBumps: 1,
			wantLive:  []int{0, 2},
			wantDead:  []int{1},
		},
		{
			name:      "two deaths are two view changes",
			evidence:  []ev{{1, StateSuspect}, {2, StateDead}, {1, StateDead}},
			wantBumps: 2,
			wantLive:  []int{0},
			wantDead:  []int{1, 2},
		},
		{
			name:      "evidence about unknown members is ignored until dead",
			evidence:  []ev{{9, StateSuspect}, {9, StateAlive}},
			wantBumps: 0,
			wantLive:  []int{0, 1, 2},
		},
		{
			name:      "self evidence is ignored",
			evidence:  []ev{{0, StateSuspect}, {0, StateDead}},
			wantBumps: 0,
			wantLive:  []int{0, 1, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := NewTable(0, "addr0", 0)
			// Two established members, joined the ordinary way.
			tab.Join(1, "addr1")
			tab.Join(2, "addr2")
			base := tab.Epoch()

			bumps := 0
			resharded := 0
			for _, e := range tc.evidence {
				d := tab.Observe(e.id, e.state)
				if d.Epoch != tab.Epoch() {
					t.Fatalf("delta epoch %d disagrees with table epoch %d", d.Epoch, tab.Epoch())
				}
				if d.Resharded {
					resharded++
				}
			}
			bumps = int(tab.Epoch() - base)
			if bumps != tc.wantBumps {
				t.Fatalf("epoch bumped %d times, want %d (view flapping?)", bumps, tc.wantBumps)
			}
			if resharded != tc.wantBumps {
				t.Fatalf("resharded %d times, want %d — suspicion must not move the ring", resharded, tc.wantBumps)
			}
			v := tab.View()
			if got := v.Live(); !reflect.DeepEqual(got, tc.wantLive) {
				t.Fatalf("live = %v, want %v", got, tc.wantLive)
			}
			if got := v.Dead(); !reflect.DeepEqual(got, tc.wantDead) {
				t.Fatalf("dead = %v, want %v", got, tc.wantDead)
			}
			for id, want := range tc.wantStates {
				m, ok := v.Member(id)
				if !ok || m.State != want {
					t.Fatalf("member %d state = %v (present=%v), want %v", id, m.State, ok, want)
				}
			}
		})
	}
}

func TestTableJoinAndSeed(t *testing.T) {
	tab := NewTable(0, "a0", 0)
	if e := tab.Epoch(); e != 1 {
		t.Fatalf("fresh table epoch = %d, want 1 (floor+1)", e)
	}
	tab.Seed(7, "a7")
	if e := tab.Epoch(); e != 1 {
		t.Fatalf("seeding bumped epoch to %d", e)
	}
	m, ok := tab.View().Member(7)
	if !ok || m.Epoch != 0 || m.State != StateAlive {
		t.Fatalf("seed record = %+v ok=%v, want alive at epoch 0", m, ok)
	}
	d := tab.Join(1, "a1")
	if !d.Changed || !d.Resharded || len(d.Joined) != 1 {
		t.Fatalf("join delta = %+v, want changed+resharded+joined", d)
	}
	// Re-join same address: no change. New address: a view change.
	if d := tab.Join(1, "a1"); d.Changed {
		t.Fatalf("idempotent join changed the view: %+v", d)
	}
	if d := tab.Join(1, "a1-moved"); !d.Changed || d.Resharded {
		t.Fatalf("address change delta = %+v, want changed without reshard", d)
	}
	// A dead ID cannot rejoin.
	tab.Observe(1, StateDead)
	if d := tab.Join(1, "a1-back"); d.Changed {
		t.Fatalf("dead member rejoined: %+v", d)
	}
}

func TestTableEpochFloor(t *testing.T) {
	tab := NewTable(3, "a3", 41)
	if e := tab.Epoch(); e != 42 {
		t.Fatalf("epoch = %d, want floor+1 = 42", e)
	}
	m, _ := tab.View().Member(3)
	if m.Epoch != 42 {
		t.Fatalf("self record epoch = %d, want 42", m.Epoch)
	}
}

func TestMergeStickyDeathAndEviction(t *testing.T) {
	tab := NewTable(0, "a0", 0)
	tab.Join(1, "a1")
	tab.Observe(1, StateDead)
	deadEpoch := tab.Epoch()

	// A livelier record for 1 at a much higher epoch must lose.
	d := tab.Merge(View{Epoch: deadEpoch + 10, Members: []Member{
		{ID: 1, Addr: "a1", State: StateAlive, Epoch: deadEpoch + 10},
	}})
	if !d.Changed { // epoch still advances to the remote's
		t.Fatalf("epoch advance not reported: %+v", d)
	}
	if m, _ := tab.View().Member(1); m.State != StateDead {
		t.Fatalf("merge resurrected a dead member: %+v", m)
	}

	// Merging a view that declares us dead evicts us, exactly once.
	d = tab.Merge(View{Epoch: tab.Epoch() + 1, Members: []Member{
		{ID: 0, Addr: "a0", State: StateDead, Epoch: tab.Epoch() + 1},
	}})
	if !d.SelfEvicted || !tab.Evicted() {
		t.Fatalf("self-death merge did not evict: %+v", d)
	}
	d = tab.Merge(View{Epoch: tab.Epoch() + 1, Members: []Member{
		{ID: 0, Addr: "a0", State: StateDead, Epoch: tab.Epoch() + 1},
	}})
	if d.SelfEvicted {
		t.Fatalf("eviction fired twice")
	}
}

func TestMergeFreshestRecordWins(t *testing.T) {
	tab := NewTable(0, "a0", 0)
	tab.Merge(View{Epoch: 5, Members: []Member{
		{ID: 2, Addr: "old", State: StateAlive, Epoch: 3},
	}})
	if m, _ := tab.View().Member(2); m.Addr != "old" {
		t.Fatalf("merge did not adopt new member: %+v", m)
	}
	// Higher member epoch: address moves.
	tab.Merge(View{Epoch: 7, Members: []Member{
		{ID: 2, Addr: "new", State: StateAlive, Epoch: 7},
	}})
	if m, _ := tab.View().Member(2); m.Addr != "new" || m.Epoch != 7 {
		t.Fatalf("freshest record lost: %+v", m)
	}
	// Stale record: ignored.
	tab.Merge(View{Epoch: 9, Members: []Member{
		{ID: 2, Addr: "stale", State: StateSuspect, Epoch: 2},
	}})
	if m, _ := tab.View().Member(2); m.Addr != "new" || m.State != StateAlive {
		t.Fatalf("stale record won a merge: %+v", m)
	}
	// Equal epoch: pessimism wins on state.
	tab.Merge(View{Epoch: 9, Members: []Member{
		{ID: 2, Addr: "new", State: StateSuspect, Epoch: 7},
	}})
	if m, _ := tab.View().Member(2); m.State != StateSuspect {
		t.Fatalf("equal-epoch pessimism lost: %+v", m)
	}
}
