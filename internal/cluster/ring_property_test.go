package cluster

import (
	"math/rand"
	"testing"
)

// TestRingMovement is the property test the migration battery leans on:
// across random join/leave sequences, ownership movement is minimal —
// on a leave, only the departed member's keys change owner; on a join,
// every key that changes owner moves to the joiner — and the ring is
// deterministic, so every member that knows the live set computes the
// same owner for every key with no coordination.
func TestRingMovement(t *testing.T) {
	const (
		steps = 60
		keys  = 4096
	)
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			live := map[int]bool{1: true, 2: true, 3: true}
			nextID := 4
			prev := buildRing(live, DefaultVNodes)
			for step := 0; step < steps; step++ {
				join := len(live) < 2 || (rng.Intn(2) == 0 && len(live) < 12)
				var subject int
				if join {
					// Joiners alternate between brand-new IDs and rejoins of
					// previously-departed members (a restart keeps its ID).
					if rng.Intn(3) == 0 && nextID > 4 {
						subject = 1 + rng.Intn(nextID-1)
						if live[subject] {
							subject = nextID
							nextID++
						}
					} else {
						subject = nextID
						nextID++
					}
					live[subject] = true
				} else {
					members := sortedLive(live)
					subject = members[rng.Intn(len(members))]
					delete(live, subject)
				}
				next := buildRing(live, DefaultVNodes)
				checkMinimalMovement(t, prev, next, subject, join, keys)
				checkDeterministic(t, rng, live, next, keys)
				if t.Failed() {
					t.Fatalf("seed %d failed at step %d (join=%v subject=%d live=%v)",
						seed, step, join, subject, sortedLive(live))
				}
				prev = next
			}
		})
	}
}

func buildRing(live map[int]bool, v int) *Ring {
	return NewRing(sortedLive(live), v)
}

func sortedLive(live map[int]bool) []int {
	out := make([]int, 0, len(live))
	for id := range live {
		out = append(out, id)
	}
	// NewRing sorts internally; sorting here only makes failure output and
	// rng.Intn selection deterministic across map iteration orders.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// checkMinimalMovement asserts the consistent-hashing contract for one
// membership step: keys either keep their owner or involve the subject
// (moved off a departed subject, or taken by a joining subject).
func checkMinimalMovement(t *testing.T, prev, next *Ring, subject int, join bool, keys uint64) {
	t.Helper()
	moved := 0
	for key := uint64(0); key < keys; key++ {
		op, okp := prev.Owner(key)
		on, okn := next.Owner(key)
		if !okn {
			if next.Size() == 0 {
				continue
			}
			t.Errorf("key %d unowned on nonempty ring", key)
			return
		}
		if !okp {
			continue // ring was empty before; everything lands on the joiner set
		}
		if op == on {
			continue
		}
		moved++
		if join {
			if on != subject {
				t.Errorf("join of %d moved key %d between bystanders %d→%d", subject, key, op, on)
				return
			}
		} else {
			if op != subject {
				t.Errorf("leave of %d moved key %d owned by bystander %d→%d", subject, key, op, on)
				return
			}
			if on == subject {
				t.Errorf("key %d still owned by departed member %d", key, subject)
				return
			}
		}
	}
	// A member of a small ring that owns zero of 4096 keys would make the
	// movement assertions vacuous; the vnode count rules that out.
	if next.Size() > 0 && next.Size() <= 12 && moved == 0 && prev.Size() > 0 {
		t.Errorf("membership change of %d moved zero keys — degenerate ring", subject)
	}
}

// checkDeterministic rebuilds the ring from a shuffled copy of the live
// set — as a different member with the same view would — and asserts
// every ownership decision matches.
func checkDeterministic(t *testing.T, rng *rand.Rand, live map[int]bool, ring *Ring, keys uint64) {
	t.Helper()
	shuffled := sortedLive(live)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	other := NewRing(shuffled, DefaultVNodes)
	for key := uint64(0); key < keys; key += 7 { // stride: full sweep done by movement check
		a, oka := ring.Owner(key)
		b, okb := other.Owner(key)
		if oka != okb || a != b {
			t.Errorf("members disagree on key %d: (%d,%v) vs (%d,%v)", key, a, oka, b, okb)
			return
		}
	}
}
