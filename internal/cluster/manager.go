package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hope-dist/hope/internal/trace"
)

// Transport is the slice of the wire layer the manager needs: address
// registration (so discovered members get dialed) and opaque gossip
// frames. *wire.Node satisfies it.
type Transport interface {
	// SetPeer maps a node ID to its address; the transport dials it.
	SetPeer(id int, addr string)
	// Gossip sends one opaque payload to a peer, best-effort (no ack,
	// no resend — anti-entropy re-sends the state anyway). Reports
	// whether the payload was queued (false: peer dead or closed).
	Gossip(to int, payload []byte) bool
}

// Config parameterizes a Manager.
type Config struct {
	// Self is this node's ID; Addr its advertised listen address.
	Self int
	Addr string
	// Seeds maps bootstrap contacts (ID → address). The seed node of a
	// fresh cluster has none; everyone else needs at least one live
	// seed to find the cluster.
	Seeds map[int]string
	// EpochFloor resumes the view epoch from a previous incarnation's
	// WAL record, so a restarted node cannot gossip a staler view than
	// any it already published.
	EpochFloor uint64
	// Interval is the gossip period (default 150ms). Every tick the
	// manager pushes its view to Fanout random live peers; every view
	// change pushes immediately.
	Interval time.Duration
	// Fanout is how many peers each round targets (default 3).
	Fanout int
	// VNodes is the ring's virtual-node count per member (default
	// DefaultVNodes). Every member must use the same value.
	VNodes int
	// Transport carries gossip and learns peer addresses. Required.
	Transport Transport
	// Tracer receives cluster events (nil = discard).
	Tracer trace.Tracer
	// OnChange fires (synchronously, under no manager lock) after every
	// view change, with the new view and the ring rebuilt from it.
	OnChange func(View, *Ring)
	// OnDeaths fires once per batch of members newly seen Dead — the
	// ownership-handoff hook: the engine auto-denies what they owned.
	OnDeaths func(dead []int, view View, ring *Ring)
	// OnEvicted fires once if the cluster declares this node dead.
	OnEvicted func(view View)
	// Persist records each view change durably (epoch, live set), so a
	// restart resumes from the last published epoch. Nil = volatile.
	Persist func(epoch uint64, live []int)
}

func (c *Config) norm() error {
	if c.Self < 0 || c.Self >= MaxID {
		return fmt.Errorf("cluster: self ID %d out of range [0,%d)", c.Self, MaxID)
	}
	if c.Transport == nil {
		return fmt.Errorf("cluster: Transport is required")
	}
	for id := range c.Seeds {
		if id < 0 || id >= MaxID {
			return fmt.Errorf("cluster: seed ID %d out of range [0,%d)", id, MaxID)
		}
	}
	if c.Interval <= 0 {
		c.Interval = 150 * time.Millisecond
	}
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Tracer == nil {
		c.Tracer = trace.Nop
	}
	return nil
}

// Stats is a snapshot of the manager's counters.
type Stats struct {
	Epoch       uint64
	Live        int
	Dead        int
	GossipSent  uint64 // payloads handed to the transport
	GossipRecv  uint64 // payloads merged
	BadPayloads uint64 // payloads DecodeView rejected
	Evicted     bool
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	out := fmt.Sprintf("epoch=%d live=%d dead=%d gossip=%d/%d bad=%d",
		s.Epoch, s.Live, s.Dead, s.GossipSent, s.GossipRecv, s.BadPayloads)
	if s.Evicted {
		out += " EVICTED"
	}
	return out
}

// Manager runs one node's membership: it folds gossip and detector
// evidence into the Table, keeps the ownership Ring in sync with the
// live view, discovers peer addresses, and spreads the view —
// periodically and immediately on every change. Create with New, wire
// its HandleGossip/GossipReply into the transport's gossip hooks and
// ObserveState into the failure detector, then Start it.
type Manager struct {
	cfg   Config
	table *Table

	mu   sync.Mutex
	ring *Ring
	rng  *rand.Rand

	sent, recv, bad atomic.Uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New builds a manager (not yet gossiping; call Start). The table
// starts with self Alive plus the configured seeds; seed addresses are
// registered with the transport immediately so the first gossip round
// can reach them.
func New(cfg Config) (*Manager, error) {
	if err := cfg.norm(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:   cfg,
		table: NewTable(cfg.Self, cfg.Addr, cfg.EpochFloor),
		rng:   rand.New(rand.NewSource(int64(cfg.Self)<<20 ^ int64(cfg.EpochFloor))),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for id, addr := range cfg.Seeds {
		if id == cfg.Self {
			continue
		}
		m.table.Seed(id, addr)
		cfg.Transport.SetPeer(id, addr)
	}
	m.mu.Lock()
	m.ring = NewRing(m.table.Live(), cfg.VNodes)
	m.mu.Unlock()
	return m, nil
}

// Start launches the periodic gossip loop. Stop ends it.
func (m *Manager) Start() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.gossipRound()
			}
		}
	}()
}

// Stop ends the gossip loop (idempotent). The manager remains usable
// passively (HandleGossip, ObserveState still merge).
func (m *Manager) Stop() {
	m.once.Do(func() {
		close(m.stop)
		<-m.done
	})
}

// View returns the current membership view.
func (m *Manager) View() View { return m.table.View() }

// Epoch returns the current view epoch.
func (m *Manager) Epoch() uint64 { return m.table.Epoch() }

// Evicted reports whether the cluster has declared this node dead.
func (m *Manager) Evicted() bool { return m.table.Evicted() }

// Ring returns the current ownership ring (rebuilt on every reshard;
// never nil).
func (m *Manager) Ring() *Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring
}

// Owner returns the live member owning key under the current ring.
func (m *Manager) Owner(key uint64) (int, bool) { return m.Ring().Owner(key) }

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	v := m.table.View()
	return Stats{
		Epoch:       v.Epoch,
		Live:        len(v.Live()),
		Dead:        len(v.Dead()),
		GossipSent:  m.sent.Load(),
		GossipRecv:  m.recv.Load(),
		BadPayloads: m.bad.Load(),
		Evicted:     m.table.Evicted(),
	}
}

// HandleGossip merges one inbound gossip payload; wire it into
// wire.GossipConfig.OnPayload. Undecodable payloads are counted and
// dropped — gossip is idempotent anti-entropy, the next round repairs.
func (m *Manager) HandleGossip(from int, payload []byte) {
	v, err := DecodeView(payload)
	if err != nil {
		m.bad.Add(1)
		m.event("cluster: node %d dropped bad gossip from node %d: %v", m.cfg.Self, from, err)
		return
	}
	m.recv.Add(1)
	m.react(m.table.Merge(v))
}

// GossipReply answers an inbound gossip frame with the local view
// (push-pull anti-entropy); wire it into wire.GossipConfig.Reply.
func (m *Manager) GossipReply(from int) []byte {
	payload, err := EncodeView(m.table.View())
	if err != nil {
		return nil
	}
	m.sent.Add(1)
	return payload
}

// ObserveState folds first-hand failure-detector evidence into the
// membership; wire it into wire.HealthConfig.OnPeerState (mapping
// wire.PeerState onto MemberState ordinally).
func (m *Manager) ObserveState(id int, state MemberState) {
	m.react(m.table.Observe(id, state))
}

// Join records a first-hand join (tests and future admin surfaces; the
// normal join path is gossip).
func (m *Manager) Join(id int, addr string) {
	m.react(m.table.Join(id, addr))
}

// react applies a mutation's delta: persist, rebuild the ring, dial
// new members, notify, and push the changed view immediately.
func (m *Manager) react(d Delta) {
	if !d.Changed && !d.SelfEvicted {
		return
	}
	view := m.table.View()
	m.mu.Lock()
	if d.Resharded {
		m.ring = NewRing(view.Live(), m.cfg.VNodes)
	}
	ring := m.ring
	m.mu.Unlock()

	if m.cfg.Persist != nil {
		m.cfg.Persist(view.Epoch, view.Live())
	}
	for _, j := range d.Joined {
		if j.ID != m.cfg.Self && j.Addr != "" && j.State != StateDead {
			m.cfg.Transport.SetPeer(j.ID, j.Addr)
		}
	}
	if len(d.Died) > 0 {
		m.event("cluster: node %d view e%d: members %v dead, ring now %v",
			m.cfg.Self, view.Epoch, d.Died, ring.Live())
		if m.cfg.OnDeaths != nil {
			m.cfg.OnDeaths(d.Died, view, ring)
		}
	}
	if len(d.Joined) > 0 {
		m.event("cluster: node %d view e%d: joined %v, ring now %v",
			m.cfg.Self, view.Epoch, d.Joined, ring.Live())
	}
	if m.cfg.OnChange != nil {
		m.cfg.OnChange(view, ring)
	}
	if d.SelfEvicted {
		m.event("cluster: node %d EVICTED at e%d — the cluster declared us dead", m.cfg.Self, view.Epoch)
		if m.cfg.OnEvicted != nil {
			m.cfg.OnEvicted(view)
		}
	}
	// Epidemic push: a change spreads now, not a tick later.
	m.gossipRound()
}

// gossipRound pushes the current view to up to Fanout random live
// peers (every live peer in small clusters).
func (m *Manager) gossipRound() {
	view := m.table.View()
	payload, err := EncodeView(view)
	if err != nil {
		m.event("cluster: node %d failed to encode view: %v", m.cfg.Self, err)
		return
	}
	var targets []int
	for _, mm := range view.Members {
		if mm.ID != m.cfg.Self && mm.State != StateDead {
			targets = append(targets, mm.ID)
		}
	}
	if len(targets) > m.cfg.Fanout {
		m.mu.Lock()
		m.rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
		m.mu.Unlock()
		targets = targets[:m.cfg.Fanout]
	}
	for _, id := range targets {
		if m.cfg.Transport.Gossip(id, payload) {
			m.sent.Add(1)
		}
	}
}

// event emits a trace.Transport event.
func (m *Manager) event(format string, args ...any) {
	m.cfg.Tracer.Emit(trace.Event{Kind: trace.Transport, Detail: fmt.Sprintf(format, args...)})
}
