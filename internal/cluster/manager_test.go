package cluster

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeNet is an in-memory Transport shared by a set of managers:
// Gossip delivers synchronously to the target's HandleGossip and feeds
// the push-pull reply back, exactly as the wire layer does over TCP.
type fakeNet struct {
	mu    sync.Mutex
	nodes map[int]*Manager
	addrs map[int]map[int]string // per-node learned addresses
	drop  map[int]bool           // unreachable nodes
}

func newFakeNet() *fakeNet {
	return &fakeNet{
		nodes: make(map[int]*Manager),
		addrs: make(map[int]map[int]string),
		drop:  make(map[int]bool),
	}
}

// port is one node's endpoint on the fakeNet.
type port struct {
	net  *fakeNet
	self int
}

func (p *port) SetPeer(id int, addr string) {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	m := p.net.addrs[p.self]
	if m == nil {
		m = make(map[int]string)
		p.net.addrs[p.self] = m
	}
	m[id] = addr
}

func (p *port) Gossip(to int, payload []byte) bool {
	p.net.mu.Lock()
	target := p.net.nodes[to]
	dead := p.net.drop[to]
	p.net.mu.Unlock()
	if target == nil || dead {
		return false
	}
	target.HandleGossip(p.self, payload)
	if reply := target.GossipReply(p.self); reply != nil {
		p.net.mu.Lock()
		src := p.net.nodes[p.self]
		p.net.mu.Unlock()
		if src != nil {
			src.HandleGossip(to, reply)
		}
	}
	return true
}

func (n *fakeNet) add(t *testing.T, cfg Config) *Manager {
	t.Helper()
	cfg.Transport = &port{net: n, self: cfg.Self}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%d): %v", cfg.Self, err)
	}
	n.mu.Lock()
	n.nodes[cfg.Self] = m
	n.mu.Unlock()
	return m
}

// pump runs rounds of gossip by hand (managers are not Started — tests
// drive time) until every manager converges on the same view or the
// round budget runs out.
func (n *fakeNet) pump(t *testing.T, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		n.mu.Lock()
		ms := make([]*Manager, 0, len(n.nodes))
		for _, m := range n.nodes {
			ms = append(ms, m)
		}
		n.mu.Unlock()
		for _, m := range ms {
			m.gossipRound()
		}
		if n.converged() {
			return
		}
	}
	t.Fatalf("views did not converge in %d rounds", rounds)
}

func (n *fakeNet) converged() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	var want View
	first := true
	for _, m := range n.nodes {
		v := m.View()
		if first {
			want, first = v, false
			continue
		}
		if v.Epoch != want.Epoch || !reflect.DeepEqual(v.Members, want.Members) {
			return false
		}
	}
	return true
}

func TestManagerBootstrapConvergence(t *testing.T) {
	net := newFakeNet()
	seed := net.add(t, Config{Self: 1, Addr: "a1", Fanout: 8})
	n2 := net.add(t, Config{Self: 2, Addr: "a2", Fanout: 8, Seeds: map[int]string{1: "a1"}})
	n3 := net.add(t, Config{Self: 3, Addr: "a3", Fanout: 8, Seeds: map[int]string{1: "a1"}})

	net.pump(t, 10)

	for _, m := range []*Manager{seed, n2, n3} {
		if got := m.View().Live(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
			t.Fatalf("node %d live = %v", m.cfg.Self, got)
		}
	}
	// Nodes 2 and 3 never configured each other, yet both learned the
	// other's address through the seed — that's the join story.
	net.mu.Lock()
	a23 := net.addrs[2][3]
	a32 := net.addrs[3][2]
	net.mu.Unlock()
	if a23 != "a3" || a32 != "a2" {
		t.Fatalf("address discovery failed: 2 sees 3 at %q, 3 sees 2 at %q", a23, a32)
	}
	// All three compute the same owner for every key.
	for key := uint64(0); key < 512; key++ {
		o1, _ := seed.Owner(key)
		o2, _ := n2.Owner(key)
		o3, _ := n3.Owner(key)
		if o1 != o2 || o2 != o3 {
			t.Fatalf("key %d: owners %d/%d/%d disagree", key, o1, o2, o3)
		}
	}
}

func TestManagerDeathHandoff(t *testing.T) {
	net := newFakeNet()
	var (
		mu     sync.Mutex
		deaths []int
		views  []uint64
	)
	seed := net.add(t, Config{
		Self: 1, Addr: "a1", Fanout: 8,
		OnDeaths: func(dead []int, view View, ring *Ring) {
			mu.Lock()
			deaths = append(deaths, dead...)
			mu.Unlock()
		},
		Persist: func(epoch uint64, live []int) {
			mu.Lock()
			views = append(views, epoch)
			mu.Unlock()
		},
	})
	n2 := net.add(t, Config{Self: 2, Addr: "a2", Fanout: 8, Seeds: map[int]string{1: "a1"}})
	n3 := net.add(t, Config{Self: 3, Addr: "a3", Fanout: 8, Seeds: map[int]string{1: "a1"}})
	net.pump(t, 10)

	// Node 3 crashes; node 2's detector sees it first. The death must
	// reach the seed by gossip, fire OnDeaths once, and shrink the ring.
	net.mu.Lock()
	net.drop[3] = true
	net.mu.Unlock()
	n2.ObserveState(3, StateSuspect) // advisory — no handoff yet
	mu.Lock()
	nd := len(deaths)
	mu.Unlock()
	if nd != 0 {
		t.Fatalf("suspicion triggered handoff")
	}
	n2.ObserveState(3, StateDead)
	for r := 0; r < 10; r++ {
		seed.gossipRound()
		n2.gossipRound()
	}
	mu.Lock()
	gotDeaths := append([]int(nil), deaths...)
	gotViews := append([]uint64(nil), views...)
	mu.Unlock()
	if !reflect.DeepEqual(gotDeaths, []int{3}) {
		t.Fatalf("seed OnDeaths = %v, want [3] exactly once", gotDeaths)
	}
	if len(gotViews) == 0 {
		t.Fatalf("no view epochs persisted")
	}
	if got := seed.Ring().Live(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("seed ring live = %v", got)
	}
	for key := uint64(0); key < 512; key++ {
		if o, ok := seed.Owner(key); !ok || o == 3 {
			t.Fatalf("key %d still owned by dead member (owner=%d ok=%v)", key, o, ok)
		}
	}
	// n3's own manager, were its process still around, learns of its
	// eviction on the first merge.
	var evicted bool
	n3.cfg.OnEvicted = func(View) { evicted = true }
	payload, _ := EncodeView(seed.View())
	n3.HandleGossip(1, payload)
	if !evicted || !n3.Evicted() {
		t.Fatalf("node 3 did not learn of its eviction")
	}
}

func TestManagerRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Self: -1, Transport: &port{}}); err == nil {
		t.Fatalf("accepted negative self")
	}
	if _, err := New(Config{Self: MaxID, Transport: &port{}}); err == nil {
		t.Fatalf("accepted out-of-range self")
	}
	if _, err := New(Config{Self: 1}); err == nil {
		t.Fatalf("accepted nil transport")
	}
	if _, err := New(Config{Self: 1, Transport: &port{}, Seeds: map[int]string{MaxID: "x"}}); err == nil {
		t.Fatalf("accepted out-of-range seed")
	}
}

func TestManagerBadGossipCounted(t *testing.T) {
	net := newFakeNet()
	m := net.add(t, Config{Self: 1, Addr: "a1"})
	m.HandleGossip(2, []byte{0xff, 0x00})
	m.HandleGossip(2, nil)
	if s := m.Stats(); s.BadPayloads != 2 || s.GossipRecv != 0 {
		t.Fatalf("stats = %v, want bad=2 recv=0", s)
	}
	if got := m.View().Live(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("bad gossip mutated the view: %v", got)
	}
}

func TestManagerStartStop(t *testing.T) {
	net := newFakeNet()
	seed := net.add(t, Config{Self: 1, Addr: "a1", Interval: 5 * time.Millisecond, Fanout: 8})
	n2 := net.add(t, Config{Self: 2, Addr: "a2", Interval: 5 * time.Millisecond, Fanout: 8,
		Seeds: map[int]string{1: "a1"}})
	seed.Start()
	n2.Start()
	deadline := time.Now().Add(2 * time.Second)
	for !net.converged() || len(seed.View().Live()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker gossip did not converge: seed=%v n2=%v", seed.View(), n2.View())
		}
		time.Sleep(2 * time.Millisecond)
	}
	seed.Stop()
	n2.Stop()
	seed.Stop() // idempotent
}
