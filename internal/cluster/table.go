package cluster

import (
	"sort"
	"sync"
)

// Table is one node's membership table: the fold of local evidence
// (joins it was told about, failure-detector transitions it observed)
// and remote evidence (views merged from gossip) into a single
// epoch-numbered View.
//
// Epoch discipline — the heart of the anti-resurrection argument:
//
//   - the epoch bumps exactly once per local membership change (a join
//     learned first-hand, a death declared first-hand). Suspicion is
//     advisory — it never bumps the epoch, so a slow heartbeat cannot
//     flap the view or reshard the ring.
//   - merging a remote view raises the local epoch to at least the
//     remote's but never re-stamps adopted records: a record keeps the
//     epoch of the change that produced it, so "freshest record wins"
//     is well-defined across any gossip path.
//   - death is sticky and overrides epoch order entirely: once a member
//     is Dead here, no record — not even one with a higher epoch — can
//     resurrect it. A node that restarts after being declared dead
//     learns of its own death on the first merge (Delta.SelfEvicted)
//     and must rejoin under a fresh ID.
//
// A Table is safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	self    int
	epoch   uint64
	members map[int]*Member
	evicted bool
}

// Delta reports what a mutation changed, so the caller can rebuild the
// ring, dial new peers, and hand off ownership without diffing views.
type Delta struct {
	// Changed: the view changed in a way that is worth gossiping and
	// persisting (membership, state, address, or epoch movement).
	Changed bool
	// Epoch: the view epoch after the mutation.
	Epoch uint64
	// Resharded: the live set changed — the ownership ring must be
	// rebuilt (a join or a death, never a suspicion).
	Resharded bool
	// Joined holds members newly added to the table (their addresses
	// want dialing).
	Joined []Member
	// Died holds members that transitioned to Dead in this mutation
	// (their AIDs want handoff).
	Died []int
	// SelfEvicted: this mutation revealed that the cluster has declared
	// us dead. Terminal — the only exit is rejoining under a fresh ID.
	SelfEvicted bool
}

// NewTable creates a table whose only member is self, Alive. epochFloor
// seeds the epoch from a previous incarnation's WAL record so a
// restarted node re-announces itself with an epoch every peer must take
// seriously — its pre-crash views can never outrank its current one.
func NewTable(self int, addr string, epochFloor uint64) *Table {
	t := &Table{
		self:    self,
		epoch:   epochFloor + 1,
		members: make(map[int]*Member),
	}
	t.members[self] = &Member{ID: self, Addr: addr, State: StateAlive, Epoch: t.epoch}
	return t
}

// Self returns this node's ID.
func (t *Table) Self() int { return t.self }

// Epoch returns the current view epoch.
func (t *Table) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Evicted reports whether the cluster has declared this node dead.
func (t *Table) Evicted() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Seed records a bootstrap contact: a member we were configured to talk
// to but have no membership evidence about. Seeds enter at epoch 0 so
// any real record — including the seed's own self-announcement — wins
// the first merge. Seeding is not a view change (no epoch bump).
func (t *Table) Seed(id int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.members[id]; ok || id == t.self {
		return
	}
	t.members[id] = &Member{ID: id, Addr: addr, State: StateAlive, Epoch: 0}
}

// Join records a first-hand join: a new member (or a new address for a
// live one). Dead IDs are refused — death is sticky, a crashed node
// rejoins under a fresh ID.
func (t *Table) Join(id int, addr string) Delta {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[id]
	switch {
	case m == nil:
		t.epoch++
		nm := &Member{ID: id, Addr: addr, State: StateAlive, Epoch: t.epoch}
		t.members[id] = nm
		return Delta{Changed: true, Epoch: t.epoch, Resharded: true, Joined: []Member{*nm}}
	case m.State == StateDead:
		return Delta{Epoch: t.epoch}
	case addr != "" && m.Addr != addr:
		t.epoch++
		m.Addr = addr
		m.Epoch = t.epoch
		return Delta{Changed: true, Epoch: t.epoch, Joined: []Member{*m}}
	default:
		return Delta{Epoch: t.epoch}
	}
}

// Observe folds one piece of first-hand failure-detector evidence into
// the table. Alive and Suspect are advisory (no epoch bump, no
// reshard); Dead is a view change. Evidence about unknown members is
// recorded — the detector can outrun gossip. Evidence about self is
// ignored (a node does not suspect itself; eviction arrives via Merge).
func (t *Table) Observe(id int, state MemberState) Delta {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == t.self {
		return Delta{Epoch: t.epoch}
	}
	m := t.members[id]
	if m == nil {
		if state != StateDead {
			return Delta{Epoch: t.epoch}
		}
		t.epoch++
		t.members[id] = &Member{ID: id, State: StateDead, Epoch: t.epoch}
		return Delta{Changed: true, Epoch: t.epoch, Resharded: true, Died: []int{id}}
	}
	if m.State == StateDead {
		return Delta{Epoch: t.epoch}
	}
	switch state {
	case StateDead:
		t.epoch++
		m.State = StateDead
		m.Epoch = t.epoch
		return Delta{Changed: true, Epoch: t.epoch, Resharded: true, Died: []int{id}}
	case StateAlive, StateSuspect:
		if m.State == state {
			return Delta{Epoch: t.epoch}
		}
		// First-hand evidence overrides whatever gossip said, without a
		// view change: suspicion must not flap the epoch or the ring.
		m.State = state
		return Delta{Changed: true, Epoch: t.epoch}
	default:
		return Delta{Epoch: t.epoch}
	}
}

// Merge folds a remote view into the table. Per member, the record with
// the higher epoch wins; at equal epochs the more pessimistic state
// wins (Dead > Suspect > Alive) and a known address beats an unknown
// one. Death is sticky regardless of epochs, in both directions: a
// locally-dead member ignores any remote record, and a remotely-dead
// record kills the local one.
func (t *Table) Merge(v View) Delta {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := Delta{Epoch: t.epoch}
	if v.Epoch > t.epoch {
		t.epoch = v.Epoch
		d.Epoch = t.epoch
		d.Changed = true
	}
	for _, rm := range v.Members {
		if rm.ID < 0 || rm.ID >= MaxID {
			continue
		}
		lm := t.members[rm.ID]
		switch {
		case lm == nil:
			nm := rm
			t.members[rm.ID] = &nm
			d.Changed = true
			d.Resharded = true
			if rm.State == StateDead {
				d.Died = append(d.Died, rm.ID)
			} else {
				d.Joined = append(d.Joined, rm)
			}
		case lm.State == StateDead:
			// Sticky: nothing resurrects a dead member.
		case rm.State == StateDead:
			lm.State = StateDead
			if rm.Epoch > lm.Epoch {
				lm.Epoch = rm.Epoch
			}
			d.Changed = true
			d.Resharded = true
			d.Died = append(d.Died, rm.ID)
		case rm.Epoch > lm.Epoch:
			if rm.Addr != "" && rm.Addr != lm.Addr {
				d.Joined = append(d.Joined, rm) // new address wants dialing
			}
			if rm.Addr != "" || lm.Addr == "" {
				lm.Addr = rm.Addr
			}
			lm.State = rm.State
			lm.Epoch = rm.Epoch
			d.Changed = true
		case rm.Epoch == lm.Epoch:
			if rm.State > lm.State {
				lm.State = rm.State
				d.Changed = true
			}
			if lm.Addr == "" && rm.Addr != "" {
				lm.Addr = rm.Addr
				d.Joined = append(d.Joined, *lm)
				d.Changed = true
			}
		}
	}
	if self := t.members[t.self]; self != nil && self.State == StateDead && !t.evicted {
		t.evicted = true
		d.SelfEvicted = true
	}
	return d
}

// View snapshots the table as an encodable, mergeable view (members
// sorted by ID). The snapshot satisfies every invariant DecodeView
// enforces.
func (t *Table) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := View{Epoch: t.epoch, Members: make([]Member, 0, len(t.members))}
	for _, m := range t.members {
		v.Members = append(v.Members, *m)
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].ID < v.Members[j].ID })
	return v
}

// Live returns the current live (non-dead) member IDs, sorted.
func (t *Table) Live() []int {
	return t.View().Live()
}
