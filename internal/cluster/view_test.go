package cluster

import (
	"reflect"
	"strings"
	"testing"
)

func sampleView() View {
	return View{Epoch: 9, Members: []Member{
		{ID: 0, Addr: "127.0.0.1:7000", State: StateAlive, Epoch: 1},
		{ID: 2, Addr: "127.0.0.1:7002", State: StateSuspect, Epoch: 4},
		{ID: 5, Addr: "", State: StateDead, Epoch: 9},
	}}
}

func TestViewCodecRoundTrip(t *testing.T) {
	for _, v := range []View{
		sampleView(),
		{Epoch: 0, Members: nil},
		{Epoch: 1, Members: []Member{{ID: 0, State: StateAlive, Epoch: 1}}},
		{Epoch: 1 << 40, Members: []Member{
			{ID: MaxID - 1, Addr: strings.Repeat("a", maxViewAddr), State: StateDead, Epoch: 1 << 40},
		}},
	} {
		data, err := EncodeView(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, err := DecodeView(data)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		want := v
		if want.Members == nil {
			want.Members = []Member{}
		}
		if got.Epoch != want.Epoch || !reflect.DeepEqual(got.Members, want.Members) {
			t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, want)
		}
	}
}

func TestViewLiveDead(t *testing.T) {
	v := sampleView()
	if got := v.Live(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Live = %v", got)
	}
	if got := v.Dead(); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("Dead = %v", got)
	}
	if _, ok := v.Member(3); ok {
		t.Fatalf("phantom member 3")
	}
}

func TestEncodeRejectsInvalidViews(t *testing.T) {
	cases := []struct {
		name string
		v    View
	}{
		{"duplicate IDs", View{Epoch: 2, Members: []Member{{ID: 1, Epoch: 1}, {ID: 1, Epoch: 2}}}},
		{"unsorted IDs", View{Epoch: 2, Members: []Member{{ID: 3, Epoch: 1}, {ID: 1, Epoch: 1}}}},
		{"ID out of range", View{Epoch: 1, Members: []Member{{ID: MaxID, Epoch: 1}}}},
		{"negative ID", View{Epoch: 1, Members: []Member{{ID: -1, Epoch: 1}}}},
		{"invalid state", View{Epoch: 1, Members: []Member{{ID: 0, State: StateDead + 1, Epoch: 1}}}},
		{"member epoch above view", View{Epoch: 1, Members: []Member{{ID: 0, Epoch: 2}}}},
		{"oversized address", View{Epoch: 1, Members: []Member{{ID: 0, Addr: strings.Repeat("x", maxViewAddr+1), Epoch: 1}}}},
	}
	for _, tc := range cases {
		if _, err := EncodeView(tc.v); err == nil {
			t.Errorf("%s: encode accepted %v", tc.name, tc.v)
		}
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	good, err := EncodeView(sampleView())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{viewVersion + 1}, good[1:]...)},
		{"trailing bytes", append(append([]byte(nil), good...), 0)},
		{"count exceeds payload", []byte{viewVersion, 1, 200}},
	}
	// Every strict truncation must be rejected, at any cut point.
	for i := 1; i < len(good); i++ {
		cases = append(cases, struct {
			name string
			data []byte
		}{"truncated", good[:i]})
	}
	for _, tc := range cases {
		if _, err := DecodeView(tc.data); err == nil {
			t.Errorf("%s: decode accepted %x", tc.name, tc.data)
		}
	}
}

// TestDecodeRejectsEpochRegression pins the anti-resurrection guard at
// the codec layer: a view whose member records claim epochs beyond the
// view's own epoch is internally inconsistent (it can only come from a
// node regressing its view counter) and must not reach Merge.
func TestDecodeRejectsEpochRegression(t *testing.T) {
	// Hand-build the payload: view epoch 3, one member at epoch 5.
	data := []byte{viewVersion, 3, 1, 0, byte(StateAlive), 5, 0}
	if _, err := DecodeView(data); err == nil {
		t.Fatalf("decode accepted an epoch-regressed view")
	}
	// Same member at epoch 3 is fine.
	data = []byte{viewVersion, 3, 1, 0, byte(StateAlive), 3, 0}
	if _, err := DecodeView(data); err != nil {
		t.Fatalf("decode rejected a consistent view: %v", err)
	}
}

func TestTableViewIsEncodable(t *testing.T) {
	tab := NewTable(0, "a0", 7)
	tab.Join(3, "a3")
	tab.Observe(3, StateSuspect)
	tab.Join(1, "a1")
	tab.Observe(1, StateDead)
	v := tab.View()
	data, err := EncodeView(v)
	if err != nil {
		t.Fatalf("table view does not encode: %v (%v)", err, v)
	}
	back, err := DecodeView(data)
	if err != nil {
		t.Fatalf("table view does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(back, v) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", back, v)
	}
}
