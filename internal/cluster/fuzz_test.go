package cluster

import (
	"reflect"
	"testing"
)

// FuzzClusterView fuzzes the gossip view codec: whatever bytes arrive
// (truncated payloads, epoch-regressing views, corrupt lengths),
// DecodeView must either reject them or produce a view that (a)
// satisfies every documented invariant and (b) survives an
// encode/decode round trip unchanged — so a decoded view can always be
// re-gossiped, and no malformed payload can smuggle an inconsistent
// view into Merge.
func FuzzClusterView(f *testing.F) {
	// Valid payloads of increasing shape.
	for _, v := range []View{
		{Epoch: 0},
		{Epoch: 1, Members: []Member{{ID: 0, Addr: "127.0.0.1:7000", State: StateAlive, Epoch: 1}}},
		sampleView(),
	} {
		data, err := EncodeView(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations of a valid payload.
		if len(data) > 2 {
			f.Add(data[:len(data)/2])
			f.Add(data[:len(data)-1])
		}
	}
	// An epoch-regressing view (member epoch 5 > view epoch 3).
	f.Add([]byte{viewVersion, 3, 1, 0, byte(StateAlive), 5, 0})
	// Wrong version, huge count, huge address length.
	f.Add([]byte{viewVersion + 1, 1, 0})
	f.Add([]byte{viewVersion, 1, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{viewVersion, 1, 1, 0, 0, 1, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeView(data)
		if err != nil {
			return // rejection is always fine
		}
		// Invariants of any accepted view.
		prev := -1
		for _, m := range v.Members {
			if m.ID <= prev || m.ID >= MaxID {
				t.Fatalf("accepted out-of-order/range member %d (prev %d)", m.ID, prev)
			}
			prev = m.ID
			if m.State > StateDead {
				t.Fatalf("accepted invalid state %d", m.State)
			}
			if m.Epoch > v.Epoch {
				t.Fatalf("accepted member epoch %d above view epoch %d", m.Epoch, v.Epoch)
			}
			if len(m.Addr) > maxViewAddr {
				t.Fatalf("accepted %d-byte address", len(m.Addr))
			}
		}
		// An accepted view re-encodes, and the round trip is lossless.
		// (Byte-exactness is not required: Uvarint tolerates non-minimal
		// varints, so two encodings can name the same view.)
		re, err := EncodeView(v)
		if err != nil {
			t.Fatalf("accepted view does not re-encode: %v", err)
		}
		back, err := DecodeView(re)
		if err != nil {
			t.Fatalf("re-encoded view does not decode: %v", err)
		}
		if back.Epoch != v.Epoch || !reflect.DeepEqual(back.Members, v.Members) {
			t.Fatalf("round trip mismatch:\n in  %v\n out %v", v, back)
		}
		// Merging an accepted view must never corrupt a table.
		tab := NewTable(0, "self", 0)
		tab.Merge(v)
		if _, err := EncodeView(tab.View()); err != nil {
			t.Fatalf("merge produced an unencodable table view: %v", err)
		}
	})
}
