package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// ViewLinePrefix marks the machine-parseable view-change lines a
// clustered hoped prints on stdout. The chaos harness tails them to
// observe each node's membership without any side channel — the same
// contract style as the HOPED READY line.
const ViewLinePrefix = "HOPED VIEW"

// FormatViewLine renders one view-change announcement:
//
//	HOPED VIEW node=2 epoch=5 live=0,1,2 dead=3
//
// live and dead are comma-separated sorted ID lists ("-" when empty,
// so every field is always present).
func FormatViewLine(node int, v View) string {
	return fmt.Sprintf("%s node=%d epoch=%d live=%s dead=%s",
		ViewLinePrefix, node, v.Epoch, idList(v.Live()), idList(v.Dead()))
}

func idList(ids []int) string {
	if len(ids) == 0 {
		return "-"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// ViewLine is one parsed view announcement.
type ViewLine struct {
	Node  int
	Epoch uint64
	Live  []int
	Dead  []int
}

// ParseViewLine parses a FormatViewLine output. ok is false for lines
// that are not view announcements; malformed announcements error.
func ParseViewLine(line string) (ViewLine, bool, error) {
	var vl ViewLine
	if !strings.HasPrefix(line, ViewLinePrefix+" ") {
		return vl, false, nil
	}
	seen := 0
	for _, f := range strings.Fields(line[len(ViewLinePrefix)+1:]) {
		key, val, found := strings.Cut(f, "=")
		if !found {
			return vl, false, fmt.Errorf("cluster: bad view line field %q in %q", f, line)
		}
		var err error
		switch key {
		case "node":
			vl.Node, err = strconv.Atoi(val)
		case "epoch":
			vl.Epoch, err = strconv.ParseUint(val, 10, 64)
		case "live":
			vl.Live, err = parseIDList(val)
		case "dead":
			vl.Dead, err = parseIDList(val)
		default:
			continue // forward compatibility: ignore unknown fields
		}
		if err != nil {
			return vl, false, fmt.Errorf("cluster: bad view line %q: %w", line, err)
		}
		seen++
	}
	if seen < 4 {
		return vl, false, fmt.Errorf("cluster: incomplete view line %q", line)
	}
	return vl, true, nil
}

func parseIDList(s string) ([]int, error) {
	if s == "-" || s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}
