package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when RingConfig
// leaves it zero. 64 points per node keeps the largest/smallest share
// ratio under ~2 for small clusters without making ring rebuilds or
// lookups expensive (rebuild is O(n·v·log(n·v)), lookup one binary
// search).
const DefaultVNodes = 64

// Ring is a consistent-hash ownership ring over a live member set:
// every 64-bit key (an AID or PID — the node-ID namespace makes either
// a stable name) is owned by exactly one live node. The ring is a pure
// function of (live set, vnodes): two nodes that agree on the view
// agree on every ownership decision with no further coordination, and
// when a member dies or joins only the keys in the arcs it covered
// change owner — everything else keeps its placement, so a rebalance
// cannot stampede the whole key space.
type Ring struct {
	vnodes int
	live   []int    // sorted member IDs the ring was built from
	points []uint64 // sorted vnode positions
	owner  []int32  // owner[i] = member owning points[i]
}

// NewRing builds the ring for the given live members (order ignored,
// duplicates collapsed) with v virtual nodes each (0 = DefaultVNodes).
// An empty live set yields a ring that owns nothing.
func NewRing(live []int, v int) *Ring {
	if v <= 0 {
		v = DefaultVNodes
	}
	ids := append([]int(nil), live...)
	sort.Ints(ids)
	ids = dedupSorted(ids)
	r := &Ring{
		vnodes: v,
		live:   ids,
		points: make([]uint64, 0, len(ids)*v),
		owner:  make([]int32, 0, len(ids)*v),
	}
	type pt struct {
		pos uint64
		id  int
	}
	pts := make([]pt, 0, len(ids)*v)
	for _, id := range ids {
		for rep := 0; rep < v; rep++ {
			pts = append(pts, pt{pos: vnodeHash(id, rep), id: id})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].pos != pts[j].pos {
			return pts[i].pos < pts[j].pos
		}
		// Hash collisions between vnodes resolve by member ID, so every
		// node breaks the tie identically.
		return pts[i].id < pts[j].id
	})
	for _, p := range pts {
		r.points = append(r.points, p.pos)
		r.owner = append(r.owner, int32(p.id))
	}
	return r
}

func dedupSorted(ids []int) []int {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// mix64 is the murmur3 64-bit finalizer: a full-avalanche bijection,
// so near-identical inputs (sequential IDs, small vnode indices) land
// uniformly across the circle. Byte-stream hashes like FNV spread
// low-entropy fixed-width inputs far too narrowly for ring placement.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// vnodeHash positions replica rep of member id on the ring. The golden
// ratio multiplier separates (id, rep) pairs before mixing so no two
// pairs collide structurally; mix64 then spreads them.
func vnodeHash(id, rep int) uint64 {
	return mix64(uint64(id)*0x9e3779b97f4a7c15 + uint64(rep) + 1)
}

// keyHash positions a key on the ring. Keys are hashed rather than used
// raw because PIDs and AIDs concentrate in the low bits of each node's
// namespace; mixing spreads them across the whole circle. The constant
// salts key positions away from the vnode positions.
func keyHash(key uint64) uint64 {
	return mix64(key ^ 0xa5a5a5a55a5a5a5a)
}

// Owner returns the live member owning key. ok is false only on an
// empty ring (no live members).
func (r *Ring) Owner(key uint64) (node int, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	pos := keyHash(key)
	// First vnode clockwise from pos, wrapping past the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= pos })
	if i == len(r.points) {
		i = 0
	}
	return int(r.owner[i]), true
}

// Owns reports whether the ring assigns key to self. The process-
// transplant layer uses it with PID keys: when a member dies, each
// survivor adopts exactly the corpse processes whose PIDs the agreed
// ring hands to it, so one corpse's process set partitions across the
// survivors with no overlap and no coordination beyond the view.
func (r *Ring) Owns(self int, key uint64) bool {
	owner, ok := r.Owner(key)
	return ok && owner == self
}

// OwnedSlice filters keys down to the subset the ring assigns to self,
// preserving input order — a survivor's slice of a dead node's
// processes (or AIDs). An empty ring owns nothing.
func (r *Ring) OwnedSlice(self int, keys []uint64) []uint64 {
	var out []uint64
	for _, k := range keys {
		if r.Owns(self, k) {
			out = append(out, k)
		}
	}
	return out
}

// Live returns the sorted member set the ring was built from.
func (r *Ring) Live() []int { return append([]int(nil), r.live...) }

// Size returns how many live members the ring shards across.
func (r *Ring) Size() int { return len(r.live) }

// VNodes returns the per-member virtual node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Shares returns each member's fraction of the ring circle — a balance
// diagnostic (perfect balance is 1/n each).
func (r *Ring) Shares() map[int]float64 {
	out := make(map[int]float64, len(r.live))
	if len(r.points) == 0 {
		return out
	}
	const whole = float64(1<<63) * 2 // 2^64 as float
	for i, pos := range r.points {
		var arc uint64
		if i == 0 {
			// The first point owns the wrap-around arc from the last point.
			arc = pos + (^r.points[len(r.points)-1] + 1)
		} else {
			arc = pos - r.points[i-1]
		}
		out[int(r.owner[i])] += float64(arc) / whole
	}
	return out
}

// String implements fmt.Stringer.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%d members × %d vnodes}", len(r.live), r.vnodes)
}
