package rpc

import (
	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/ids"
)

// This file implements the paper's running example (§3.1, Figures 1–2):
// a report writer that prints a summary total to a remote print server,
// must start a new page if the total overflowed the current page, and
// then prints a trailer.
//
// Three workers are provided:
//
//   - PessimisticWorker — Figure 1: synchronous round trips.
//   - OptimisticWorker — Figure 2 verbatim: per report, a WorryWart
//     performs the total print concurrently, guards ordering with the
//     Order assumption (free_of), and decides PartPage. Faithful to the
//     paper's single-report fragment; when reports are pipelined, prints
//     from different processes may legitimately interleave differently
//     than a sequential run (the paper does not define cross-report
//     ordering).
//   - StreamedWorker — the call-streaming variant in which one sender
//     issues every print, so FIFO delivery pins the page layout to the
//     sequential one exactly; used by the experiments that compare
//     layouts and measure latency at varying prediction accuracy.

// Print server methods.
const (
	// MethodPrint appends a line and returns the new line number.
	MethodPrint = "print"
	// MethodNewPage starts a new page (line 0).
	MethodNewPage = "newpage"
)

// PrintServer returns a Server body with print/newpage semantics over a
// line counter. Lines grow without bound until an explicit newpage —
// overflowing a page is the caller's business to detect, which is
// precisely what the Worker speculates about.
func PrintServer() core.Body {
	handlers := map[string]Handler{
		MethodPrint: func(line, _ int) (int, int) {
			line++
			return line, line
		},
		MethodNewPage: func(_, _ int) (int, int) {
			return 0, 0
		},
	}
	return Server(handlers, 0)
}

// PageReport is the outcome of one Worker run.
type PageReport struct {
	// NewPageCalls counts explicit newpage requests the Worker issued.
	NewPageCalls int
	// Totals is how many summary totals were printed.
	Totals int
}

// PessimisticWorker returns Figure 1's Worker: for each of n reports it
// prints the total, waits for the line number, starts a new page if the
// total reached the page boundary, and prints the trailer — two or three
// synchronous round trips per report.
func PessimisticWorker(server ids.PID, pageSize, n int, done func(PageReport)) core.Body {
	return func(ctx *core.Ctx) error {
		var rep PageReport
		seq := 0
		for i := 0; i < n; i++ {
			line, err := Call(ctx, server, MethodPrint, 0, seq)
			seq++
			if err != nil {
				return err
			}
			rep.Totals++
			if line >= pageSize {
				if _, err := Call(ctx, server, MethodNewPage, 0, seq); err != nil {
					return err
				}
				seq++
				rep.NewPageCalls++
			}
			if _, err := Call(ctx, server, MethodPrint, 0, seq); err != nil { // trailer
				return err
			}
			seq++
		}
		ctx.Externalize(func() { done(rep) })
		return nil
	}
}

// OptimisticWorker returns Figure 2's Worker/WorryWart pair: the Worker
// assumes the total did not land on the page boundary (PartPage) and
// streams the trailer print immediately, guarded by the Order assumption;
// the WorryWart concurrently performs the total print, asserts it is free
// of Order (detecting trailer-before-total causality violations), and
// decides PartPage from the returned line number. The PartPage denial is
// deferred (footnote 1): a decision read from a still-speculative line
// count must be revocable.
func OptimisticWorker(server ids.PID, pageSize, n int, done func(PageReport)) core.Body {
	return func(ctx *core.Ctx) error {
		var rep PageReport
		seq := 0
		for i := 0; i < n; i++ {
			partPage := ctx.AidInit()
			order := ctx.AidInit()
			printSeq := seq
			seq++

			// WorryWart: executes S1 (the total print) and verifies.
			ctx.Spawn(func(w *core.Ctx) error {
				line, err := Call(w, server, MethodPrint, 0, printSeq)
				if err != nil {
					return err
				}
				if !w.FreeOf(order) {
					// Causality violation: the trailer overtook the
					// total. order is denied; everything dependent on it
					// — including the server's premature trailer — rolls
					// back, and this WorryWart re-executes.
					return nil
				}
				if line < pageSize {
					w.Affirm(partPage)
				} else {
					w.DenyDeferred(partPage)
				}
				return nil
			})
			rep.Totals++

			// S2: assume no page overflow.
			if !ctx.Guess(partPage) {
				if _, err := Call(ctx, server, MethodNewPage, 0, seq); err != nil {
					return err
				}
				seq++
				rep.NewPageCalls++
			}

			// S3: the trailer print, dependent on the Order assumption so
			// that overtaking the WorryWart's total print is detectable.
			ctx.Guess(order)
			ctx.Send(server, Request{Method: MethodPrint, Seq: seq})
			seq++
		}
		ctx.Externalize(func() { done(rep) })
		return nil
	}
}

// StreamedWorker pipelines n reports with every print issued by the
// Worker itself: per-pair FIFO delivery then guarantees the server sees
// prints in program order, so the resulting page layout is byte-for-byte
// the sequential one while the Worker still never waits. Each total's
// reply is routed to a per-report WorryWart (the request's ReplyTo) that
// decides PartPage; denial rolls the Worker back to the guess, where it
// inserts the newpage and re-streams the rest.
func StreamedWorker(server ids.PID, pageSize, n int, done func(PageReport)) core.Body {
	return func(ctx *core.Ctx) error {
		var rep PageReport
		seq := 0
		for i := 0; i < n; i++ {
			partPage := ctx.AidInit()
			printSeq := seq
			seq++

			// The verifier only receives the total's line number.
			ww := ctx.Spawn(func(w *core.Ctx) error {
				for {
					payload, _, err := w.Recv()
					if err != nil {
						return err
					}
					resp, ok := payload.(Response)
					if !ok || resp.Seq != printSeq {
						continue
					}
					if resp.Result < pageSize {
						w.Affirm(partPage)
					} else {
						w.DenyDeferred(partPage)
					}
					return nil
				}
			})

			// S1: the total print, reply routed to the WorryWart.
			ctx.Send(server, Request{ReplyTo: ww, Method: MethodPrint, Seq: printSeq})
			rep.Totals++

			// S2: assume no overflow; on denial, re-execution lands here
			// and streams the newpage before everything that follows.
			if !ctx.Guess(partPage) {
				ctx.Send(server, Request{Method: MethodNewPage, Seq: seq})
				seq++
				rep.NewPageCalls++
			}

			// S3: the trailer print. Same sender as S1, so it can never
			// overtake it; no Order assumption is needed.
			ctx.Send(server, Request{Method: MethodPrint, Seq: seq})
			seq++
		}
		ctx.Externalize(func() { done(rep) })
		return nil
	}
}
