package rpc

import (
	"sync"
	"testing"
	"time"

	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/ids"
	"github.com/hope-dist/hope/internal/netsim"
)

const settleTimeout = 10 * time.Second

func newEngine(t *testing.T, latency netsim.LatencyModel) *core.Engine {
	t.Helper()
	eng := core.NewEngine(core.Config{Transport: netsim.New(latency)})
	t.Cleanup(eng.Shutdown)
	return eng
}

type reportSink struct {
	mu   sync.Mutex
	last *PageReport
}

func (s *reportSink) put(r PageReport) {
	s.mu.Lock()
	s.last = &r
	s.mu.Unlock()
}

func (s *reportSink) get() *PageReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

func TestSynchronousCall(t *testing.T) {
	eng := newEngine(t, nil)
	server, err := eng.SpawnRoot(Server(map[string]Handler{
		"add": func(state, arg int) (int, int) {
			state += arg
			return state, state
		},
	}, 0))
	if err != nil {
		t.Fatalf("spawn server: %v", err)
	}

	var got []int
	var mu sync.Mutex
	if _, err := eng.SpawnRoot(func(ctx *core.Ctx) error {
		for i, arg := range []int{5, 7, 1} {
			v, err := Call(ctx, server.PID(), "add", arg, i)
			if err != nil {
				return err
			}
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		}
		return nil
	}); err != nil {
		t.Fatalf("spawn client: %v", err)
	}

	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int{5, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestOptimisticCallCorrectPrediction(t *testing.T) {
	eng := newEngine(t, netsim.Constant(200*time.Microsecond))
	server, err := eng.SpawnRoot(Server(map[string]Handler{
		"double": func(state, arg int) (int, int) { return state, 2 * arg },
	}, 0))
	if err != nil {
		t.Fatalf("spawn server: %v", err)
	}

	var mu sync.Mutex
	var result int
	client, err := eng.SpawnRoot(func(ctx *core.Ctx) error {
		v, err := CallOptimistic(ctx, server.PID(), "double", 21, 0,
			func(_ string, arg int) int { return 2 * arg })
		if err != nil {
			return err
		}
		mu.Lock()
		result = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn client: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	defer mu.Unlock()
	if result != 42 {
		t.Fatalf("result = %d, want 42", result)
	}
	st := client.Snapshot()
	if st.Restarts != 0 {
		t.Fatalf("client rolled back %d times on a correct prediction", st.Restarts)
	}
	if !st.AllDefinite {
		t.Fatalf("client history not definite: %+v", st)
	}
}

func TestOptimisticCallWrongPrediction(t *testing.T) {
	eng := newEngine(t, netsim.Constant(100*time.Microsecond))
	server, err := eng.SpawnRoot(Server(map[string]Handler{
		"double": func(state, arg int) (int, int) { return state, 2 * arg },
	}, 0))
	if err != nil {
		t.Fatalf("spawn server: %v", err)
	}

	var mu sync.Mutex
	var results []int
	client, err := eng.SpawnRoot(func(ctx *core.Ctx) error {
		v, err := CallOptimistic(ctx, server.PID(), "double", 21, 0,
			func(_ string, _ int) int { return -1 }) // always wrong
		if err != nil {
			return err
		}
		mu.Lock()
		results = append(results, v)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spawn client: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(results) == 0 {
		t.Fatal("client never finished a call")
	}
	if final := results[len(results)-1]; final != 42 {
		t.Fatalf("final result = %d, want 42 (all: %v)", final, results)
	}
	st := client.Snapshot()
	if st.Restarts == 0 {
		t.Fatal("client never rolled back despite wrong prediction")
	}
	if !st.AllDefinite {
		t.Fatalf("client history not definite: %+v", st)
	}
}

// runPagination runs one worker against a fresh print server and returns
// its report.
func runPagination(t *testing.T, latency time.Duration, build func(server ids.PID, sink *reportSink) core.Body) PageReport {
	t.Helper()
	eng := newEngine(t, netsim.Constant(latency))
	server, err := eng.SpawnRoot(PrintServer())
	if err != nil {
		t.Fatalf("spawn server: %v", err)
	}
	var sink reportSink
	if _, err := eng.SpawnRoot(build(server.PID(), &sink)); err != nil {
		t.Fatalf("spawn worker: %v", err)
	}
	if !eng.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	rep := sink.get()
	if rep == nil {
		t.Fatal("worker never completed")
	}
	return *rep
}

// TestPaginationStreamedEquivalence: the streamed Worker must produce
// exactly the pessimistic page layout — same newpage count — because a
// single sender pins the print order.
func TestPaginationStreamedEquivalence(t *testing.T) {
	const (
		pageSize = 4
		reports  = 10
	)
	pess := runPagination(t, 50*time.Microsecond, func(server ids.PID, sink *reportSink) core.Body {
		return PessimisticWorker(server, pageSize, reports, sink.put)
	})
	opt := runPagination(t, 50*time.Microsecond, func(server ids.PID, sink *reportSink) core.Body {
		return StreamedWorker(server, pageSize, reports, sink.put)
	})

	if pess.Totals != reports || opt.Totals != reports {
		t.Fatalf("totals: pessimistic=%d streamed=%d, want %d", pess.Totals, opt.Totals, reports)
	}
	if pess.NewPageCalls == 0 {
		t.Fatal("degenerate workload: pessimistic run never overflowed a page")
	}
	if pess.NewPageCalls != opt.NewPageCalls {
		t.Fatalf("newpage calls differ: pessimistic=%d streamed=%d", pess.NewPageCalls, opt.NewPageCalls)
	}
}

// TestPaginationFigure2Equivalence: the paper's per-report Worker matches
// the pessimistic layout for the single-report fragment the paper
// actually shows (cross-report interleaving is unspecified by the paper).
func TestPaginationFigure2Equivalence(t *testing.T) {
	for _, pageSize := range []int{1, 2, 8} {
		pess := runPagination(t, 50*time.Microsecond, func(server ids.PID, sink *reportSink) core.Body {
			return PessimisticWorker(server, pageSize, 1, sink.put)
		})
		opt := runPagination(t, 50*time.Microsecond, func(server ids.PID, sink *reportSink) core.Body {
			return OptimisticWorker(server, pageSize, 1, sink.put)
		})
		if pess.NewPageCalls != opt.NewPageCalls {
			t.Fatalf("pageSize=%d: newpage calls differ: pessimistic=%d optimistic=%d",
				pageSize, pess.NewPageCalls, opt.NewPageCalls)
		}
	}
}

// TestPaginationLatencyWin: with significant network latency and always
// correct predictions, the optimistic Worker's *user-visible* completion
// (the paper's measured RPC latency win) is much faster; commitment of
// the speculation (all intervals definite) trails behind as bookkeeping.
func TestPaginationLatencyWin(t *testing.T) {
	const (
		pageSize = 50 // no overflow within the run: predictions always right
		reports  = 8
		latency  = 2 * time.Millisecond
	)
	run := func(t *testing.T, optimistic bool) (complete, committed time.Duration) {
		t.Helper()
		eng := newEngine(t, netsim.Constant(latency))
		server, err := eng.SpawnRoot(PrintServer())
		if err != nil {
			t.Fatalf("spawn server: %v", err)
		}
		var sink reportSink
		body := PessimisticWorker(server.PID(), pageSize, reports, sink.put)
		if optimistic {
			body = StreamedWorker(server.PID(), pageSize, reports, sink.put)
		}
		start := time.Now()
		if _, err := eng.SpawnRoot(body); err != nil {
			t.Fatalf("spawn worker: %v", err)
		}
		deadline := time.Now().Add(settleTimeout)
		for sink.get() == nil {
			if time.Now().After(deadline) {
				t.Fatal("worker never completed")
			}
			time.Sleep(100 * time.Microsecond)
		}
		complete = time.Since(start)
		if !eng.Settle(settleTimeout) {
			t.Fatal("no settle")
		}
		committed = time.Since(start)
		return complete, committed
	}

	pess, pessCommit := run(t, false)
	opt, optCommit := run(t, true)
	t.Logf("completion: pessimistic=%v optimistic=%v (%.0f%% saved); commit: %v vs %v",
		pess, opt, 100*(1-opt.Seconds()/pess.Seconds()), pessCommit, optCommit)
	if opt >= pess {
		t.Fatalf("optimistic completion (%v) not faster than pessimistic (%v)", opt, pess)
	}
}
