// Package rpc implements the paper's motivating workload (§3.1): hiding
// remote-procedure-call latency with optimism.
//
// A synchronous RPC costs a full round trip per call. The optimistic
// transformation (Bacon & Strom's call streaming, realized with HOPE in
// the paper's Figures 1–2) predicts the reply, spawns a WorryWart process
// to perform the real call and verify the prediction, and lets the caller
// speculate onward immediately. A wrong prediction denies the assumption
// and rolls the caller back to the call site; the caller then re-issues
// the call pessimistically under the same call identifier, which the
// server answers from its deduplication cache without re-applying the
// operation.
package rpc

import (
	"encoding/gob"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/hope-dist/hope/internal/core"
	"github.com/hope-dist/hope/internal/ids"
)

func init() {
	// A Server's compaction snapshot (ServerState) is persisted by the
	// durable layer via gob when the node runs with a WAL.
	gob.Register(ServerState{})
}

// callIDs issues process-wide unique call identifiers. Uniqueness is all
// that matters; the values are journaled via Ctx.Record so re-executions
// replay the identifier they first drew.
var callIDs atomic.Uint64

// Request is the wire format of a call to a Server.
type Request struct {
	// ReplyTo receives the Response. It is carried explicitly because a
	// WorryWart calls on behalf of its parent. NilPID means no reply is
	// wanted (fire-and-forget).
	ReplyTo ids.PID
	// Method selects the server operation.
	Method string
	// Arg is the operation argument.
	Arg int
	// Seq correlates responses with requests per caller.
	Seq int
	// CallID deduplicates executions: two requests with the same nonzero
	// CallID apply the operation once, and both receive its result. The
	// optimistic path uses this to let the rolled-back caller retrieve
	// the result of the call its WorryWart already made.
	CallID uint64
}

// Response is the wire format of a Server's reply.
type Response struct {
	Seq    int
	CallID uint64
	Result int
}

// Handler computes a server operation: state in, (state, result) out.
type Handler func(state, arg int) (newState, result int)

// ServerState is a Server's journal-compactable state. Its fields are
// exported so the durable layer can gob-encode compaction snapshots into
// the write-ahead log and restore them after a crash.
type ServerState struct {
	Value int
	Cache map[uint64]int // CallID → result, for dedup
}

func (s ServerState) clone() ServerState {
	c := ServerState{Value: s.Value, Cache: make(map[uint64]int, len(s.Cache))}
	for k, v := range s.Cache {
		c.Cache[k] = v
	}
	return c
}

// Server returns a process body implementing a stateful request/response
// service. Every request executes against the running state; because
// requests arrive as tagged messages, speculative callers make the server
// speculative too, and HOPE rolls its state back by re-execution when
// their assumptions fail. The body is a compacting Loop: once in-flight
// speculation resolves, the server snapshots its state and sheds its
// replay journal, so rollback cost stays proportional to the speculative
// suffix no matter how long the server lives.
func Server(handlers map[string]Handler, initial int) core.Body {
	return core.Loop(core.LoopConfig[ServerState]{
		Init:  func() ServerState { return ServerState{Value: initial, Cache: make(map[uint64]int)} },
		Clone: ServerState.clone,
		Handle: func(ctx *core.Ctx, state ServerState, payload any, _ ids.PID) (ServerState, error) {
			req, ok := payload.(Request)
			if !ok {
				return state, fmt.Errorf("rpc server: unexpected payload %T", payload)
			}
			result, seen := state.Cache[req.CallID]
			if req.CallID == 0 || !seen {
				h, ok := handlers[req.Method]
				if !ok {
					return state, fmt.Errorf("rpc server: unknown method %q", req.Method)
				}
				state.Value, result = h(state.Value, req.Arg)
				if req.CallID != 0 {
					state.Cache[req.CallID] = result
				}
			}
			if req.ReplyTo.Valid() {
				ctx.Send(req.ReplyTo, Response{Seq: req.Seq, CallID: req.CallID, Result: result})
			}
			return state, nil
		},
		CompactEvery: 16,
	})
}

// call sends a request and blocks for the matching response. Replies
// with other sequence numbers are consumed and skipped: after a rollback,
// a response journalled in a discarded interval is requeued and may be
// re-delivered to a re-execution that took a different path.
func call(ctx *core.Ctx, server ids.PID, req Request) (int, error) {
	req.ReplyTo = ctx.PID()
	ctx.Send(server, req)
	for {
		payload, _, err := ctx.Recv()
		if err != nil {
			return 0, err
		}
		resp, ok := payload.(Response)
		if !ok {
			continue
		}
		// Match by CallID when the request carries one — sequence
		// numbers repeat across re-execution generations, call
		// identifiers do not — and by Seq otherwise.
		if req.CallID != 0 {
			if resp.CallID == req.CallID {
				return resp.Result, nil
			}
			continue
		}
		if resp.Seq == req.Seq {
			return resp.Result, nil
		}
	}
}

// Call performs a synchronous (pessimistic) RPC: it sends the request and
// blocks until the matching response arrives. This is the baseline the
// optimistic path is measured against.
func Call(ctx *core.Ctx, server ids.PID, method string, arg, seq int) (int, error) {
	return call(ctx, server, Request{Method: method, Arg: arg, Seq: seq})
}

// Probe issues one synchronous call from a throwaway definite process
// and returns the result. Because the call is a full round trip it also
// barriers on the server having consumed everything sent before it —
// the wire benchmark, the crash-restart tests, and the chaos harness
// all use it to read a server's committed state as ground truth.
func Probe(eng *core.Engine, server ids.PID, method string, timeout time.Duration) (int, error) {
	got := make(chan int, 1)
	errc := make(chan error, 1)
	_, err := eng.SpawnRoot(func(ctx *core.Ctx) error {
		res, err := call(ctx, server, Request{Method: method, Seq: 1 << 20})
		if err != nil {
			errc <- err
			return err
		}
		got <- res
		return nil
	})
	if err != nil {
		return 0, err
	}
	select {
	case res := <-got:
		return res, nil
	case err := <-errc:
		return 0, err
	case <-time.After(timeout):
		return 0, fmt.Errorf("rpc: probe %s to %v timed out after %v", method, server, timeout)
	}
}

// Predictor guesses a call's result before the server answers.
type Predictor func(method string, arg int) int

// CallOptimistic performs the call-streaming transformation for one RPC:
// it predicts the result, spawns a WorryWart to execute the real call and
// affirm or deny the prediction, and returns the predicted value
// immediately — the caller is speculative until verification completes.
//
// If the prediction was wrong the caller rolls back to this call site and
// CallOptimistic re-issues the call synchronously under the same call
// identifier; the server's dedup cache guarantees the operation applies
// once even though two requests named it.
func CallOptimistic(ctx *core.Ctx, server ids.PID, method string, arg, seq int, predict Predictor) (int, error) {
	predicted := predict(method, arg)
	x := ctx.AidInit()
	id, ok := ctx.Record(func() any { return callIDs.Add(1) }).(uint64)
	if !ok {
		return 0, fmt.Errorf("rpc optimistic call: corrupt journalled call id")
	}

	// The WorryWart executes the real call. Spawned before the guess, it
	// inherits only the speculation the caller already carries, exactly
	// like Figure 2's WorryWart process.
	ctx.Spawn(func(w *core.Ctx) error {
		result, err := call(w, server, Request{Method: method, Arg: arg, Seq: seq, CallID: id})
		if err != nil {
			return err
		}
		if result == predicted {
			w.Affirm(x)
		} else {
			w.Deny(x)
		}
		return nil
	})

	if ctx.Guess(x) {
		return predicted, nil
	}

	// Pessimistic path (after rollback): fetch the actual result under
	// the same CallID — answered from the server's dedup cache if the
	// WorryWart's execution survived, applied fresh otherwise.
	return call(ctx, server, Request{Method: method, Arg: arg, Seq: seq, CallID: id})
}
