// Package timewarp implements a compact Time Warp optimistic simulation
// kernel (Jefferson [14]) as the comparison baseline the paper positions
// HOPE against (§2): Time Warp permits exactly one kind of optimistic
// assumption — that events arrive in timestamp order — with rollback via
// state restoration and anti-messages.
//
// The kernel runs one goroutine per logical process, communicating
// through unbounded queues (event traffic in an optimistic simulator is
// inherently bursty; bounding the queues would deadlock rollback storms,
// so growth is bounded by the workload's event population instead).
// Quiescence detection replaces continuous GVT: the run ends when no
// messages are in flight and every LP is idle, at which point all
// remaining speculation is trivially committed. Fossil collection is a
// per-LP cap on saved history, safe here because state saving is O(1)
// per event.
package timewarp

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/hope-dist/hope/internal/phold"
)

// message wraps an event with its anti-message sign.
type message struct {
	ev   phold.Event
	anti bool
}

// processedRecord remembers everything needed to undo one event.
type processedRecord struct {
	ev          phold.Event
	stateBefore uint64
	emitted     []phold.Event
}

// Stats aggregates a run's dynamic behaviour.
type Stats struct {
	// Committed is the number of event executions retained at the end.
	Committed int
	// Rollbacks counts rollback episodes across all LPs.
	Rollbacks int
	// Undone counts event executions discarded by rollbacks.
	Undone int
	// AntiMessages counts anti-messages sent.
	AntiMessages int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// lp is one logical process.
type lp struct {
	k *Kernel

	index   int
	state   uint64
	inbox   *msgQueue
	pending phold.Heap
	// dangling holds anti-messages whose positive copy has not arrived,
	// keyed by full event identity: a re-emission after rollback can
	// reuse a UID with different At/To/Data, so UID alone is ambiguous.
	dangling map[phold.Event]int

	processed []processedRecord

	rollbacks int
	undone    int
	antis     int

	idle atomic.Bool
}

// msgQueue is an unbounded, closeable message queue (see the package
// comment for why it is not a bounded channel).
type msgQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []message
	closed bool
}

func newMsgQueue() *msgQueue {
	q := &msgQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *msgQueue) put(m message) {
	q.mu.Lock()
	q.items = append(q.items, m)
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *msgQueue) take() (message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return message{}, false
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, true
}

func (q *msgQueue) tryTake() (message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return message{}, false
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, true
}

func (q *msgQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Kernel runs one PHOLD configuration under Time Warp.
type Kernel struct {
	cfg phold.Config
	lps []*lp

	inflight atomic.Int64
	wg       sync.WaitGroup
}

// New constructs a kernel for cfg.
func New(cfg phold.Config) *Kernel {
	k := &Kernel{cfg: cfg}
	k.lps = make([]*lp, cfg.LPs)
	for i := range k.lps {
		k.lps[i] = &lp{
			k:        k,
			index:    i,
			state:    cfg.InitialState(i),
			inbox:    newMsgQueue(),
			dangling: make(map[phold.Event]int),
		}
	}
	return k
}

// send routes a message, tracking it for quiescence detection.
func (k *Kernel) send(m message) {
	k.inflight.Add(1)
	k.lps[m.ev.To].inbox.put(m)
}

// Run executes the simulation to quiescence and returns the committed
// result plus dynamic statistics.
func (k *Kernel) Run() (phold.Result, Stats) {
	start := time.Now()
	for _, l := range k.lps {
		for _, e := range k.cfg.InitialEventsFor(l.index) {
			k.send(message{ev: e})
		}
	}
	for _, l := range k.lps {
		k.wg.Add(1)
		go func(l *lp) {
			defer k.wg.Done()
			l.run()
		}(l)
	}

	// Quiescence: no in-flight messages and every LP parked, observed
	// stably. With zero in flight and all LPs idle no further event can
	// be produced, so the state is final.
	stable := 0
	for stable < 3 {
		time.Sleep(100 * time.Microsecond)
		if k.inflight.Load() == 0 && k.allIdle() {
			stable++
		} else {
			stable = 0
		}
	}
	for _, l := range k.lps {
		l.inbox.close()
	}
	k.wg.Wait()

	res := phold.Result{States: make([]uint64, len(k.lps))}
	var st Stats
	for i, l := range k.lps {
		res.States[i] = l.state
		res.Processed += len(l.processed)
		st.Rollbacks += l.rollbacks
		st.Undone += l.undone
		st.AntiMessages += l.antis
	}
	st.Committed = res.Processed
	st.Elapsed = time.Since(start)
	return res, st
}

func (k *Kernel) allIdle() bool {
	for _, l := range k.lps {
		if !l.idle.Load() {
			return false
		}
	}
	return true
}

// run is the LP main loop: drain arrivals, process the lowest-key
// pending event, park when nothing is processable.
func (l *lp) run() {
	for {
		for {
			m, ok := l.inbox.tryTake()
			if !ok {
				break
			}
			l.k.inflight.Add(-1)
			l.arrive(m)
		}

		if l.pending.Len() > 0 {
			ev := l.pending.Pop()
			if _, isAnti := l.dangling[ev]; isAnti {
				// Annihilate with a waiting anti-message.
				l.annihilate(ev)
				continue
			}
			l.process(ev)
			continue
		}

		l.idle.Store(true)
		m, ok := l.inbox.take()
		l.idle.Store(false)
		if !ok {
			return
		}
		l.k.inflight.Add(-1)
		l.arrive(m)
	}
}

// arrive files one incoming message: a straggler forces a rollback, an
// anti-message annihilates its positive copy (rolling back first if the
// copy was already processed).
func (l *lp) arrive(m message) {
	if m.anti {
		// If the positive copy was processed, undo back past it.
		for i, p := range l.processed {
			if p.ev == m.ev {
				l.rollbackToIndex(i)
				break
			}
		}
		l.dangling[m.ev]++
		// Annihilate immediately if the positive copy is pending.
		l.annihilatePending(m.ev)
		return
	}

	// Straggler: an event ordering before something already processed.
	if n := len(l.processed); n > 0 && m.ev.Key().Less(l.processed[n-1].ev.Key()) {
		for i, p := range l.processed {
			if m.ev.Key().Less(p.ev.Key()) {
				l.rollbackToIndex(i)
				break
			}
		}
	}
	l.pending.Push(m.ev)
	l.annihilatePending(m.ev)
}

// annihilatePending removes a pending event matching a dangling
// anti-message, if both are present.
func (l *lp) annihilatePending(ev phold.Event) {
	if l.dangling[ev] == 0 {
		return
	}
	// Scan pending for the positive copy.
	var rest []phold.Event
	found := false
	for l.pending.Len() > 0 {
		e := l.pending.Pop()
		if !found && e == ev {
			found = true
			continue
		}
		rest = append(rest, e)
	}
	for _, e := range rest {
		l.pending.Push(e)
	}
	if found {
		l.annihilate(ev)
	}
}

func (l *lp) annihilate(ev phold.Event) {
	if l.dangling[ev] <= 1 {
		delete(l.dangling, ev)
	} else {
		l.dangling[ev]--
	}
}

// rollbackToIndex undoes processed[i:] newest-first: state is restored,
// undone events return to pending, and every emitted message is chased
// with an anti-message.
func (l *lp) rollbackToIndex(i int) {
	l.rollbacks++
	for n := len(l.processed) - 1; n >= i; n-- {
		p := l.processed[n]
		l.state = p.stateBefore
		l.pending.Push(p.ev)
		for _, em := range p.emitted {
			l.k.send(message{ev: em, anti: true})
			l.antis++
		}
		l.undone++
	}
	l.processed = l.processed[:i]
}

// process executes one event optimistically.
func (l *lp) process(ev phold.Event) {
	rec := processedRecord{ev: ev, stateBefore: l.state}
	var children []phold.Event
	l.state, children = l.k.cfg.Step(l.state, ev)
	for _, ch := range children {
		rec.emitted = append(rec.emitted, ch)
		l.k.send(message{ev: ch})
	}
	l.processed = append(l.processed, rec)
}
