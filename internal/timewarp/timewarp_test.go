package timewarp

import (
	"testing"

	"github.com/hope-dist/hope/internal/phold"
)

func TestKernelMatchesReferenceAcrossConfigs(t *testing.T) {
	for _, cfg := range []phold.Config{
		{LPs: 1, InitialEvents: 1, End: 20, MaxDelay: 3, Seed: 1},
		{LPs: 2, InitialEvents: 2, End: 40, MaxDelay: 5, Seed: 2},
		{LPs: 6, InitialEvents: 3, End: 60, MaxDelay: 9, Seed: 3},
		{LPs: 3, InitialEvents: 5, End: 100, MaxDelay: 4, Seed: 4},
	} {
		want := phold.Sequential(cfg)
		got, stats := New(cfg).Run()
		if !got.Equal(want) {
			t.Fatalf("cfg %+v: kernel %+v != reference %+v (stats %+v)", cfg, got, want, stats)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := phold.Config{LPs: 4, InitialEvents: 3, End: 80, MaxDelay: 6, Seed: 5}
	res, stats := New(cfg).Run()
	if stats.Committed != res.Processed {
		t.Fatalf("committed %d != processed %d", stats.Committed, res.Processed)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
	// Every undone execution implies at least one anti-message per
	// emitted child; undone and antis are both zero or both positive in
	// workloads where most events emit children.
	if stats.Undone > 0 && stats.Rollbacks == 0 {
		t.Fatalf("undone %d with zero rollbacks", stats.Undone)
	}
}

func TestSingleLPNeverRollsBack(t *testing.T) {
	// One LP receives its own events through one FIFO queue in creation
	// order... which is NOT timestamp order: self-scheduling can deliver
	// a later-created, earlier-timestamped event after a later one was
	// processed. Rollbacks may therefore occur even with one LP; what
	// must hold is exact agreement with the reference.
	cfg := phold.Config{LPs: 1, InitialEvents: 4, End: 120, MaxDelay: 10, Seed: 6}
	want := phold.Sequential(cfg)
	got, _ := New(cfg).Run()
	if !got.Equal(want) {
		t.Fatalf("kernel %+v != reference %+v", got, want)
	}
}

func TestEmptyWorkload(t *testing.T) {
	cfg := phold.Config{LPs: 2, InitialEvents: 0, End: 10, MaxDelay: 3, Seed: 7}
	res, stats := New(cfg).Run()
	if res.Processed != 0 || stats.Committed != 0 {
		t.Fatalf("empty workload processed %d", res.Processed)
	}
}

func TestRepeatedRunsCommitIdentically(t *testing.T) {
	cfg := phold.Config{LPs: 5, InitialEvents: 2, End: 70, MaxDelay: 7, Seed: 8}
	want := phold.Sequential(cfg)
	for i := 0; i < 8; i++ {
		got, _ := New(cfg).Run()
		if !got.Equal(want) {
			t.Fatalf("run %d: %+v != %+v", i, got, want)
		}
	}
}
