package occ_test

import (
	"fmt"
	"time"

	hope "github.com/hope-dist/hope"
	"github.com/hope-dist/hope/occ"
)

// Two lock-free transactions race to increment one counter; backward
// validation serializes them and the loser transparently retries.
func Example() {
	sys := hope.New()
	defer sys.Shutdown()

	store, _ := sys.Spawn(occ.Store())
	client := occ.Client{Store: store.PID()}

	for i := 0; i < 2; i++ {
		sys.Spawn(func(ctx *hope.Ctx) error {
			seq := 0
			return client.Run(ctx, &seq, func(tx *occ.Txn) error {
				v, _, err := tx.Get("counter")
				if err != nil {
					return err
				}
				tx.Set("counter", v+1)
				return nil
			})
		})
	}
	sys.Settle(10 * time.Second)

	done := make(chan int, 1)
	sys.Spawn(func(ctx *hope.Ctx) error {
		seq := 0
		return client.Run(ctx, &seq, func(tx *occ.Txn) error {
			v, _, err := tx.Get("counter")
			done <- v
			return err
		})
	})
	sys.Settle(10 * time.Second)
	fmt.Println("counter:", <-done)
	// Output: counter: 2
}
