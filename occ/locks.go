package occ

// The pessimistic baseline the paper's §1 framing implies: two-phase
// locking against a lock-server process. Each transaction acquires every
// lock up front (in sorted order, so the baseline itself cannot
// deadlock), executes, and releases — paying a lock round trip before
// any work can start, which is exactly the latency optimism removes.

import (
	"fmt"
	"sort"

	hope "github.com/hope-dist/hope"
)

// Lock-server wire types.
type (
	// AcquireReq asks for exclusive locks on a sorted key set. The
	// server replies with AcquireResp when every lock is held.
	AcquireReq struct {
		ReplyTo hope.PID
		Keys    []string
		Seq     int
	}
	// AcquireResp grants the locks.
	AcquireResp struct {
		Seq int
	}
	// ReleaseReq releases locks held by the sender.
	ReleaseReq struct {
		From hope.PID
		Keys []string
	}
)

// waiter is one queued acquisition.
type waiter struct {
	replyTo hope.PID
	keys    []string
	seq     int
}

// LockServer returns a lock-server body: exclusive locks with FIFO
// queuing per request (a request waits until all its keys are free).
func LockServer() hope.Body {
	return func(ctx *hope.Ctx) error {
		held := make(map[string]hope.PID)
		var queue []waiter

		free := func(keys []string) bool {
			for _, k := range keys {
				if _, taken := held[k]; taken {
					return false
				}
			}
			return true
		}
		grant := func(w waiter) {
			for _, k := range w.keys {
				held[k] = w.replyTo
			}
			ctx.Send(w.replyTo, AcquireResp{Seq: w.seq})
		}
		pump := func() {
			for {
				progressed := false
				for i, w := range queue {
					if free(w.keys) {
						grant(w)
						queue = append(queue[:i], queue[i+1:]...)
						progressed = true
						break
					}
				}
				if !progressed {
					return
				}
			}
		}

		for {
			payload, _, err := ctx.Recv()
			if err != nil {
				return err
			}
			switch req := payload.(type) {
			case AcquireReq:
				w := waiter{replyTo: req.ReplyTo, keys: req.Keys, seq: req.Seq}
				if free(w.keys) && len(queue) == 0 {
					grant(w)
				} else {
					queue = append(queue, w)
				}
			case ReleaseReq:
				for _, k := range req.Keys {
					if held[k] == req.From {
						delete(held, k)
					}
				}
				pump()
			default:
				return fmt.Errorf("occ lock server: unexpected payload %T", payload)
			}
		}
	}
}

// LockedClient runs transactions under two-phase locking: the
// pessimistic baseline for the experiments.
type LockedClient struct {
	// Store is the data store (reads/writes go there as usual).
	Store hope.PID
	// Locks is the lock server.
	Locks hope.PID
}

// Run executes body with every key in keys exclusively locked for the
// duration. Unlike the optimistic client, the caller waits a full lock
// round trip before the body can begin.
func (c LockedClient) Run(ctx *hope.Ctx, seq *int, keys []string, body func(tx *Txn) error) error {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)

	*seq++
	lockSeq := *seq
	ctx.Send(c.Locks, AcquireReq{ReplyTo: ctx.PID(), Keys: sorted, Seq: lockSeq})
	for {
		payload, _, err := ctx.Recv()
		if err != nil {
			return err
		}
		if resp, ok := payload.(AcquireResp); ok && resp.Seq == lockSeq {
			break
		}
	}
	defer ctx.Send(c.Locks, ReleaseReq{From: ctx.PID(), Keys: sorted})

	tx := &Txn{
		ctx:     ctx,
		store:   c.Store,
		seq:     seq,
		readSet: make(map[string]bool),
		writes:  make(map[string]int),
	}
	if err := body(tx); err != nil {
		return err
	}
	if len(tx.writes) == 0 {
		return nil
	}

	// Locks guarantee no conflict; commit definitively via the same
	// validation path (it trivially passes: our read keys are locked).
	assume := ctx.AidInit()
	ctx.Send(c.Store, CommitReq{
		StartID:  1 << 30, // locked: nothing after our begin can conflict
		ReadKeys: tx.readKeys,
		Writes:   tx.writes,
		Assume:   assume,
	})
	if !ctx.Guess(assume) {
		return fmt.Errorf("occ: locked transaction failed validation (lock server broken?)")
	}
	return nil
}
