// Package occ implements optimistic concurrency control — the paper's
// own flagship example of optimism (§1: "assume that locks will be
// granted, process the transaction, and post hoc verify"; Kung &
// Robinson [17]) — on HOPE.
//
// Transactions execute against a store process without taking locks,
// buffering writes locally. At commit the client *guesses* the
// transaction will validate and continues immediately; the store
// performs classic backward validation (the read set against the write
// sets of transactions committed since this one began) and affirms or
// denies the assumption. A denial rolls the client back to the commit
// point — along with everything computed from the doomed transaction —
// and the transaction re-executes against fresh state.
//
// HOPE supplies what OCC implementations normally build by hand: the
// client-side continuation speculation, the cascading abort of dependent
// work, and the retry loop's state restoration.
package occ

import (
	"fmt"
	"sort"

	hope "github.com/hope-dist/hope"
)

// Wire types.
type (
	// BeginReq opens a transaction: the store answers with the current
	// commit sequence number, the snapshot point for validation.
	BeginReq struct {
		ReplyTo hope.PID
		Seq     int
	}
	// BeginResp carries the snapshot point.
	BeginResp struct {
		Seq     int
		StartID int
	}
	// ReadReq reads one key.
	ReadReq struct {
		ReplyTo hope.PID
		Key     string
		Seq     int
	}
	// ReadResp answers a ReadReq.
	ReadResp struct {
		Seq   int
		Value int
		Found bool
	}
	// CommitReq asks the store to validate and atomically apply the
	// transaction. The verdict arrives as an affirm or deny of Assume.
	CommitReq struct {
		StartID  int
		ReadKeys []string
		Writes   map[string]int
		Assume   hope.AID
	}
)

// committed is one validation-history entry.
type committed struct {
	id     int
	writes []string
}

// Store returns the store process body: a serialized validator and
// applier over an in-memory key/value map. Because it is a single HOPE
// process, validation+apply is atomic per transaction, and because
// requests are tagged messages, speculative clients make the store
// speculative in turn — HOPE unwinds it if their assumptions fail.
func Store() hope.Body {
	return func(ctx *hope.Ctx) error {
		data := make(map[string]int)
		var history []committed
		nextID := 1

		for {
			payload, _, err := ctx.Recv()
			if err != nil {
				return err
			}
			switch req := payload.(type) {
			case BeginReq:
				ctx.Send(req.ReplyTo, BeginResp{Seq: req.Seq, StartID: nextID - 1})
			case ReadReq:
				v, ok := data[req.Key]
				ctx.Send(req.ReplyTo, ReadResp{Seq: req.Seq, Value: v, Found: ok})
			case CommitReq:
				if conflicts(history, req.StartID, req.ReadKeys) {
					ctx.Deny(req.Assume)
					continue
				}
				keys := make([]string, 0, len(req.Writes))
				for k, v := range req.Writes {
					data[k] = v
					keys = append(keys, k)
				}
				sort.Strings(keys) // deterministic history for replay
				history = append(history, committed{id: nextID, writes: keys})
				nextID++
				ctx.Affirm(req.Assume)
			default:
				return fmt.Errorf("occ store: unexpected payload %T", payload)
			}
		}
	}
}

// conflicts reports whether any transaction committed after startID
// wrote a key the candidate read — Kung & Robinson's backward validation.
func conflicts(history []committed, startID int, readKeys []string) bool {
	reads := make(map[string]bool, len(readKeys))
	for _, k := range readKeys {
		reads[k] = true
	}
	for _, c := range history {
		if c.id <= startID {
			continue
		}
		for _, w := range c.writes {
			if reads[w] {
				return true
			}
		}
	}
	return false
}

// Txn is one transaction attempt's handle. Reads go to the store;
// writes buffer locally until commit.
type Txn struct {
	ctx     *hope.Ctx
	store   hope.PID
	seq     *int
	startID int

	readKeys []string
	readSet  map[string]bool
	writes   map[string]int
}

// Get reads a key, first from the local write buffer, then the store.
func (t *Txn) Get(key string) (int, bool, error) {
	if v, ok := t.writes[key]; ok {
		return v, true, nil
	}
	if !t.readSet[key] {
		t.readSet[key] = true
		t.readKeys = append(t.readKeys, key)
	}
	*t.seq++
	seq := *t.seq
	t.ctx.Send(t.store, ReadReq{ReplyTo: t.ctx.PID(), Key: key, Seq: seq})
	for {
		payload, _, err := t.ctx.Recv()
		if err != nil {
			return 0, false, err
		}
		if resp, ok := payload.(ReadResp); ok && resp.Seq == seq {
			return resp.Value, resp.Found, nil
		}
	}
}

// Set buffers a write.
func (t *Txn) Set(key string, value int) {
	t.writes[key] = value
}

// Client runs transactions against one store.
type Client struct {
	// Store is the store process.
	Store hope.PID
	// MaxAttempts bounds the retry loop (0 = 16).
	MaxAttempts int
}

// ErrTooManyConflicts is returned when a transaction keeps failing
// validation.
var ErrTooManyConflicts = fmt.Errorf("occ: transaction exceeded its conflict retries")

// Run executes body as an optimistic transaction: it returns as soon as
// the commit request is *sent*, with the caller speculating that
// validation will succeed. A conflict denies that assumption, HOPE rolls
// the caller back here (with everything computed downstream), and the
// transaction re-executes against fresh state.
//
// seq is the caller's message-sequence cursor; Run advances it.
func (c Client) Run(ctx *hope.Ctx, seq *int, body func(tx *Txn) error) error {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 16
	}
	for attempt := 0; attempt < attempts; attempt++ {
		// Begin: fetch the snapshot point.
		*seq++
		beginSeq := *seq
		ctx.Send(c.Store, BeginReq{ReplyTo: ctx.PID(), Seq: beginSeq})
		var startID int
		for {
			payload, _, err := ctx.Recv()
			if err != nil {
				return err
			}
			if resp, ok := payload.(BeginResp); ok && resp.Seq == beginSeq {
				startID = resp.StartID
				break
			}
		}

		tx := &Txn{
			ctx:     ctx,
			store:   c.Store,
			seq:     seq,
			startID: startID,
			readSet: make(map[string]bool),
			writes:  make(map[string]int),
		}
		if err := body(tx); err != nil {
			return err
		}

		// Read-only transactions validate trivially: nothing to apply,
		// and backward validation of an empty write set cannot help or
		// hurt anyone.
		if len(tx.writes) == 0 {
			return nil
		}

		// Optimistic commit: assume validation succeeds and return
		// immediately; the store's verdict affirms or denies.
		assume := ctx.AidInit()
		ctx.Send(c.Store, CommitReq{
			StartID:  startID,
			ReadKeys: tx.readKeys,
			Writes:   tx.writes,
			Assume:   assume,
		})
		if ctx.Guess(assume) {
			return nil
		}
		// Validation failed: retry against fresh state.
	}
	return ErrTooManyConflicts
}
