package occ

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	hope "github.com/hope-dist/hope"
)

const settleTimeout = 30 * time.Second

func deploy(t *testing.T, opts ...hope.Option) (*hope.System, Client) {
	t.Helper()
	sys := hope.New(opts...)
	t.Cleanup(sys.Shutdown)
	store, err := sys.Spawn(Store())
	if err != nil {
		t.Fatalf("spawn store: %v", err)
	}
	return sys, Client{Store: store.PID()}
}

// readBack fetches a key's committed value through a fresh read-only
// transaction.
func readBack(t *testing.T, sys *hope.System, client Client, key string) int {
	t.Helper()
	var mu sync.Mutex
	var got int
	if _, err := sys.Spawn(func(ctx *hope.Ctx) error {
		seq := 0
		return client.Run(ctx, &seq, func(tx *Txn) error {
			v, _, err := tx.Get(key)
			if err != nil {
				return err
			}
			mu.Lock()
			got = v
			mu.Unlock()
			return nil
		})
	}); err != nil {
		t.Fatalf("spawn reader: %v", err)
	}
	if !sys.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	defer mu.Unlock()
	return got
}

// TestSingleTransactionCommits: the basic write path.
func TestSingleTransactionCommits(t *testing.T) {
	sys, client := deploy(t)

	p, err := sys.Spawn(func(ctx *hope.Ctx) error {
		seq := 0
		return client.Run(ctx, &seq, func(tx *Txn) error {
			tx.Set("answer", 42)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !sys.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	st := p.Snapshot()
	if st.Err != nil {
		t.Fatalf("txn error: %v", st.Err)
	}
	if st.Restarts != 0 {
		t.Fatalf("uncontended txn rolled back %d times", st.Restarts)
	}
	if !st.AllDefinite {
		t.Fatalf("txn not committed: %+v", st)
	}
	if v := readBack(t, sys, client, "answer"); v != 42 {
		t.Fatalf("answer = %d, want 42", v)
	}
}

// TestLostUpdatePrevented: N concurrent read-modify-write increments of
// one counter must all be serialized — the defining OCC guarantee.
func TestLostUpdatePrevented(t *testing.T) {
	sys, client := deploy(t, hope.WithJitterLatency(0, 200*time.Microsecond, 5))

	const writers = 6
	procs := make([]*hope.Process, writers)
	for w := 0; w < writers; w++ {
		p, err := sys.Spawn(func(ctx *hope.Ctx) error {
			seq := 0
			return client.Run(ctx, &seq, func(tx *Txn) error {
				v, _, err := tx.Get("counter")
				if err != nil {
					return err
				}
				tx.Set("counter", v+1)
				return nil
			})
		})
		if err != nil {
			t.Fatalf("spawn writer %d: %v", w, err)
		}
		procs[w] = p
	}
	if !sys.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	conflicts := 0
	for w, p := range procs {
		st := p.Snapshot()
		if st.Err != nil {
			t.Fatalf("writer %d error: %v", w, st.Err)
		}
		if !st.AllDefinite {
			t.Fatalf("writer %d not committed: %+v", w, st)
		}
		conflicts += st.Restarts
	}
	if got := readBack(t, sys, client, "counter"); got != writers {
		t.Fatalf("counter = %d, want %d (lost updates! %d conflicts observed)", got, writers, conflicts)
	}
	if v := sys.Violations(); v != 0 {
		t.Fatalf("%d protocol violations", v)
	}
}

// TestTransferInvariant: concurrent transfers between two accounts keep
// the total balance constant.
func TestTransferInvariant(t *testing.T) {
	sys, client := deploy(t, hope.WithJitterLatency(0, 150*time.Microsecond, 11))

	// Fund the accounts.
	if _, err := sys.Spawn(func(ctx *hope.Ctx) error {
		seq := 0
		return client.Run(ctx, &seq, func(tx *Txn) error {
			tx.Set("a", 100)
			tx.Set("b", 100)
			return nil
		})
	}); err != nil {
		t.Fatalf("spawn funder: %v", err)
	}
	if !sys.Settle(settleTimeout) {
		t.Fatal("no settle after funding")
	}

	const transfers = 5
	for i := 0; i < transfers; i++ {
		amount := i + 1
		if _, err := sys.Spawn(func(ctx *hope.Ctx) error {
			seq := 0
			return client.Run(ctx, &seq, func(tx *Txn) error {
				av, _, err := tx.Get("a")
				if err != nil {
					return err
				}
				bv, _, err := tx.Get("b")
				if err != nil {
					return err
				}
				tx.Set("a", av-amount)
				tx.Set("b", bv+amount)
				return nil
			})
		}); err != nil {
			t.Fatalf("spawn transfer %d: %v", i, err)
		}
	}
	if !sys.Settle(settleTimeout) {
		t.Fatal("no settle after transfers")
	}

	a := readBack(t, sys, client, "a")
	b := readBack(t, sys, client, "b")
	if a+b != 200 {
		t.Fatalf("total = %d (a=%d b=%d), want 200", a+b, a, b)
	}
	want := 100 - (1 + 2 + 3 + 4 + 5)
	if a != want {
		t.Fatalf("a = %d, want %d", a, want)
	}
}

// TestReadOnlyNeverRetries: read-only transactions skip validation.
func TestReadOnlyNeverRetries(t *testing.T) {
	sys, client := deploy(t)
	p, err := sys.Spawn(func(ctx *hope.Ctx) error {
		seq := 0
		return client.Run(ctx, &seq, func(tx *Txn) error {
			_, _, err := tx.Get("whatever")
			return err
		})
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !sys.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	if st := p.Snapshot(); st.Restarts != 0 || st.Err != nil || !st.AllDefinite {
		t.Fatalf("read-only txn: %+v", st)
	}
}

// TestWriteBufferVisibleToOwnReads: a transaction reads its own writes.
func TestWriteBufferVisibleToOwnReads(t *testing.T) {
	sys, client := deploy(t)
	var mu sync.Mutex
	var got int
	if _, err := sys.Spawn(func(ctx *hope.Ctx) error {
		seq := 0
		return client.Run(ctx, &seq, func(tx *Txn) error {
			tx.Set("k", 7)
			v, found, err := tx.Get("k")
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("own write invisible")
			}
			mu.Lock()
			got = v
			mu.Unlock()
			return nil
		})
	}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !sys.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	mu.Lock()
	defer mu.Unlock()
	if got != 7 {
		t.Fatalf("read own write = %d, want 7", got)
	}
}

// TestRetryBudgetExhausted: MaxAttempts surfaces ErrTooManyConflicts...
// which requires sustained conflict. A writer that conflicts with itself
// is impossible, so drive a perpetual-conflict scenario: every attempt of
// the victim races a fresh committed write to its read key, forced by an
// antagonist that watches the store's state.
func TestRetryBudgetExhausted(t *testing.T) {
	sys, client := deploy(t)
	limited := client
	limited.MaxAttempts = 2

	// The antagonist keeps committing writes to "hot" forever (bounded
	// iterations to keep the test finite, spaced by real time so the
	// victim's attempts interleave).
	if _, err := sys.Spawn(func(ctx *hope.Ctx) error {
		seq := 0
		for i := 0; i < 200; i++ {
			time.Sleep(200 * time.Microsecond)
			if err := client.Run(ctx, &seq, func(tx *Txn) error {
				tx.Set("hot", i)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("spawn antagonist: %v", err)
	}

	victim, err := sys.Spawn(func(ctx *hope.Ctx) error {
		seq := 0
		return limited.Run(ctx, &seq, func(tx *Txn) error {
			v, _, err := tx.Get("hot")
			if err != nil {
				return err
			}
			// Dawdle so the antagonist commits within our window.
			time.Sleep(2 * time.Millisecond)
			tx.Set("out", v)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("spawn victim: %v", err)
	}
	if !sys.Settle(settleTimeout) {
		t.Fatal("no settle")
	}
	st := victim.Snapshot()
	// Either the victim hit the budget (expected under sustained
	// conflict) or squeaked through on a lucky window; both are legal,
	// but the budget path must surface the sentinel error.
	if st.Err != nil && !errors.Is(st.Err, ErrTooManyConflicts) {
		t.Fatalf("victim error = %v, want ErrTooManyConflicts or success", st.Err)
	}
	if st.Err == nil && st.Restarts == 0 {
		t.Log("victim never conflicted; scenario too lucky but not wrong")
	}
}
