package hope_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	hope "github.com/hope-dist/hope"
)

// This file encodes the paper's Theorem 5.1 as an executable property:
//
//	finalize(B) occurs iff affirm(X) is applied to all of the AIDs
//	X ∈ B.IDO by intervals that eventually become definite.
//
// Randomized programs (seeded) make assumptions, exchange tainted
// messages, and transitively affirm derived assumptions; afterwards the
// observable consequences of the theorem are checked:
//
//  1. a process's retained (final) branch for every guess matches the
//     assumption's decided truth value;
//  2. every process ends definite once every assumption is decided and
//     the dependency graph is acyclic;
//  3. an assumption speculatively affirmed by a process is finally True
//     iff the affirming process's own assumptions all held — and False
//     when the process re-executed and denied it (Lemma 5.3 made
//     observable).

// guessOutcome is one retained guess result.
type guessOutcome struct {
	aid    hope.AID
	result bool
}

// outcomeBoard collects each process's final retained outcome sequence.
type outcomeBoard struct {
	mu  sync.Mutex
	seq map[int][]guessOutcome
}

func newBoard() *outcomeBoard {
	return &outcomeBoard{seq: make(map[int][]guessOutcome)}
}

func (b *outcomeBoard) store(who int, outcomes []guessOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq[who] = outcomes
}

func (b *outcomeBoard) get(who int) []guessOutcome {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq[who]
}

func TestTheorem51RandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runTheoremProgram(t, seed)
		})
	}
}

func runTheoremProgram(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	const (
		numAIDs     = 6
		numGuessers = 4
		maxGuesses  = 4
	)

	sys := hope.New(hope.WithJitterLatency(0, 200*time.Microsecond, seed))
	defer sys.Shutdown()

	// Base assumptions and their planned verdicts.
	baseAIDs := make([]hope.AID, numAIDs)
	verdict := make(map[hope.AID]bool, numAIDs)
	for i := range baseAIDs {
		x, err := sys.NewAID()
		if err != nil {
			t.Fatalf("NewAID: %v", err)
		}
		baseAIDs[i] = x
		verdict[x] = rng.Intn(100) < 60 // 60% affirmed
	}

	// Derived assumptions: guesser g speculatively affirms derived[g]
	// when its own guesses hold, denies it after rolling back otherwise.
	derived := make([]hope.AID, numGuessers)
	for g := range derived {
		x, err := sys.NewAID()
		if err != nil {
			t.Fatalf("NewAID: %v", err)
		}
		derived[g] = x
	}

	// A sink accumulates tainted messages from every guesser so that
	// implicit guesses and cascading rollbacks are exercised.
	sink, err := sys.Spawn(func(ctx *hope.Ctx) error {
		for {
			if _, _, err := ctx.Recv(); err != nil {
				return err
			}
		}
	})
	if err != nil {
		t.Fatalf("spawn sink: %v", err)
	}

	board := newBoard()
	guessers := make([]*hope.Process, numGuessers)
	type plan struct {
		guesses []hope.AID
		partner hope.AID // derived AID of the previous guesser, guessed last
	}
	plans := make([]plan, numGuessers)
	for g := 0; g < numGuessers; g++ {
		n := 1 + rng.Intn(maxGuesses)
		pl := plan{partner: derived[(g+numGuessers-1)%numGuessers]}
		for i := 0; i < n; i++ {
			pl.guesses = append(pl.guesses, baseAIDs[rng.Intn(numAIDs)])
		}
		plans[g] = pl
	}

	for g := 0; g < numGuessers; g++ {
		g := g
		pl := plans[g]
		proc, err := sys.Spawn(func(ctx *hope.Ctx) error {
			var outcomes []guessOutcome
			all := true
			for _, x := range pl.guesses {
				ok := ctx.Guess(x)
				outcomes = append(outcomes, guessOutcome{aid: x, result: ok})
				all = all && ok
				ctx.Send(sink.PID(), "tainted")
			}
			if all {
				ctx.Affirm(derived[g])
			} else {
				ctx.Deny(derived[g])
			}
			// Guess the previous guesser's derived assumption last, so
			// its outcome reflects the Lemma 5.3 transitivity chain.
			ok := ctx.Guess(pl.partner)
			outcomes = append(outcomes, guessOutcome{aid: pl.partner, result: ok})
			board.store(g, outcomes)
			return nil
		})
		if err != nil {
			t.Fatalf("spawn guesser %d: %v", g, err)
		}
		guessers[g] = proc
	}

	// Deciders issue the planned verdicts after a short delay so guesses
	// race ahead speculatively. Delays are drawn up front: bodies must
	// not share the test's rng.
	for _, x := range baseAIDs {
		x := x
		v := verdict[x]
		delay := time.Duration(rng.Intn(3)) * time.Millisecond
		if _, err := sys.Spawn(func(ctx *hope.Ctx) error {
			time.Sleep(delay)
			if v {
				ctx.Affirm(x)
			} else {
				ctx.Deny(x)
			}
			return nil
		}); err != nil {
			t.Fatalf("spawn decider: %v", err)
		}
	}

	if !sys.Settle(30 * time.Second) {
		t.Fatal("system did not settle")
	}

	// Expected truth of the derived assumptions: all of the affirming
	// guesser's base assumptions held.
	derivedTruth := make(map[hope.AID]bool, numGuessers)
	for g := 0; g < numGuessers; g++ {
		all := true
		for _, x := range plans[g].guesses {
			all = all && verdict[x]
		}
		derivedTruth[derived[g]] = all
	}
	truth := func(x hope.AID) bool {
		if v, ok := verdict[x]; ok {
			return v
		}
		return derivedTruth[x]
	}

	for g, proc := range guessers {
		st := proc.Snapshot()
		if !st.Completed {
			t.Fatalf("guesser %d did not complete: %+v", g, st)
		}
		if !st.AllDefinite {
			t.Fatalf("guesser %d not definite after all verdicts: %+v", g, st)
		}
		outcomes := board.get(g)
		if len(outcomes) != len(plans[g].guesses)+1 {
			t.Fatalf("guesser %d recorded %d outcomes, want %d", g, len(outcomes), len(plans[g].guesses)+1)
		}
		for i, o := range outcomes {
			if o.result != truth(o.aid) {
				t.Fatalf("guesser %d outcome %d: guess(%v) retained %v, truth is %v (seed %d)",
					g, i, o.aid, o.result, truth(o.aid), seed)
			}
		}
	}

	if st := sink.Snapshot(); !st.AllDefinite {
		t.Fatalf("sink not definite: %+v", st)
	}
	if v := sys.Violations(); v != 0 {
		t.Fatalf("%d protocol violations in a single-decider program", v)
	}
}

// TestTheorem51NeverFinalizeUndecided: an interval whose assumption is
// never decided must never finalize (the "only if" direction).
func TestTheorem51NeverFinalizeUndecided(t *testing.T) {
	sys := hope.New()
	defer sys.Shutdown()

	x, _ := sys.NewAID()
	p, err := sys.Spawn(func(ctx *hope.Ctx) error {
		ctx.Guess(x)
		return nil
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !sys.Settle(5 * time.Second) {
		t.Fatal("no settle")
	}
	st := p.Snapshot()
	if !st.Completed {
		t.Fatalf("process did not complete: %+v", st)
	}
	if st.AllDefinite {
		t.Fatal("interval finalized although its assumption was never affirmed")
	}
}
